package bench

import (
	"testing"

	"noftl/internal/flash"
	"noftl/internal/ioreq"
	"noftl/internal/nand"
	"noftl/internal/sched"
	"noftl/internal/sim"
	"noftl/internal/storage"
	"noftl/internal/trace"
)

// TestClassInheritanceEndToEnd checks the tentpole invariant on both
// the single-volume and region-managed stacks: a request whose context
// declares ClassGC at the engine layer must reach the die queue as a GC
// command, be recorded as GC (with its stream tag) in the command log,
// and show up in the scheduler's and device's per-class queue-wait
// accounting — even though the volume routed it through its foreground
// device views.
func TestClassInheritanceEndToEnd(t *testing.T) {
	for _, stack := range []Stack{StackNoFTL, StackNoFTLRegions} {
		t.Run(string(stack), func(t *testing.T) {
			log := &trace.CmdLog{}
			opts := BuildOpts{Sched: &sched.Config{Policy: sched.Priority, Trace: log.Record}}
			devCfg := flash.EmulatorConfig(2, 16, nand.SLC)
			sys, err := BuildSystemOpts(stack, devCfg, 64, opts)
			if err != nil {
				t.Fatal(err)
			}
			const tag = 7
			var runErr error
			sys.K.Go("client", func(p *sim.Proc) {
				ctx := storage.NewIOCtx(sim.ProcWaiter{P: p}).
					WithClass(ioreq.ClassGC).WithTag(tag)
				buf := make([]byte, sys.Vol.PageSize())
				if err := sys.Vol.WritePage(ctx, 3, buf, storage.HintHotData); err != nil {
					runErr = err
					return
				}
				if err := sys.Vol.ReadPage(ctx, 3, buf); err != nil {
					runErr = err
				}
			})
			sys.K.RunFor(sim.Second)
			sys.K.Shutdown()
			if runErr != nil {
				t.Fatal(runErr)
			}

			st := sys.Sched.Stats()
			if st.Scheduled[sched.ClassGC] < 2 {
				t.Fatalf("declared-GC write+read must dispatch as GC: scheduled=%v", st.Scheduled)
			}
			if st.Retagged < 2 {
				t.Fatalf("descriptor overrides not counted: retagged=%d", st.Retagged)
			}
			var gotProgram, gotRead bool
			for _, ev := range log.Events {
				if ev.Tag != tag {
					t.Fatalf("command lost its stream tag: %+v", ev)
				}
				if ev.Class != sched.ClassGC {
					t.Fatalf("command lost its declared class: %+v", ev)
				}
				switch ev.Op {
				case "program":
					gotProgram = true
				case "read":
					gotRead = true
				}
			}
			if !gotProgram || !gotRead {
				t.Fatalf("command log incomplete: program=%v read=%v (%d events)",
					gotProgram, gotRead, len(log.Events))
			}
			// Queue-wait attribution: only the GC class row may be
			// populated, in scheduler stats and in the device's per-class
			// mirror.
			for c := sched.Class(0); c < sched.NumClasses; c++ {
				if c != sched.ClassGC && st.Scheduled[c] != 0 {
					t.Fatalf("class %v dispatched %d commands; all traffic declared GC",
						c, st.Scheduled[c])
				}
			}
			dst := sys.Dev.Stats()
			if dst.ClassQueuedCmds[int(sched.ClassGC)] != st.Scheduled[sched.ClassGC] {
				t.Fatalf("device per-class accounting mismatch: dev=%v sched=%v",
					dst.ClassQueuedCmds, st.Scheduled)
			}
		})
	}
}

// TestTagWaitHistogram checks per-tag attribution in the command log.
func TestTagWaitHistogram(t *testing.T) {
	log := &trace.CmdLog{}
	log.Record(sched.Event{Tag: 1, Class: sched.ClassRead, Arrival: 0, Start: 10, End: 20})
	log.Record(sched.Event{Tag: 2, Class: sched.ClassRead, Arrival: 0, Start: 30, End: 40})
	log.Record(sched.Event{Tag: 1, Class: sched.ClassGC, Arrival: 5, Start: 25, End: 45})
	h := log.TagWait(1)
	if h.Count() != 2 || h.Max() != 20 {
		t.Fatalf("tag-1 wait histogram: count=%d max=%v", h.Count(), h.Max())
	}
	if log.TagWait(2).Count() != 1 {
		t.Fatal("tag-2 wait histogram wrong")
	}
	if log.TagWait(9).Count() != 0 {
		t.Fatal("unknown tag must be empty")
	}
}
