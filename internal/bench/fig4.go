package bench

import (
	"fmt"

	"noftl/internal/flash"
	"noftl/internal/nand"
	"noftl/internal/sim"
	"noftl/internal/stats"
	"noftl/internal/storage"
	"noftl/internal/workload"
)

// Fig4Config parameterizes the Figure-4 experiment: transactional
// throughput as a function of flash parallelism with db-writers bound
// globally versus die-wise. The paper sweeps 1..32 dies with
// #db-writers = #dies, 16 read processes, a 10 GB drive, TPC-C sf=50 /
// TPC-B sf=500; the defaults shrink drive and populations.
type Fig4Config struct {
	Workload string // "tpcc" or "tpcb"
	Dies     []int  // default {1, 2, 4, 8, 16, 32}
	Workers  int    // default 16 ("16 read processes")
	DriveMB  int    // default 192
	Frames   int    // buffer frames; default 512
	Warm     sim.Time
	Measure  sim.Time
	Seed     int64

	TPCC workload.TPCCConfig
	TPCB workload.TPCBConfig
}

func (c Fig4Config) withDefaults() Fig4Config {
	if c.Workload == "" {
		c.Workload = "tpcc"
	}
	if len(c.Dies) == 0 {
		c.Dies = []int{1, 2, 4, 8, 16, 32}
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.DriveMB <= 0 {
		c.DriveMB = 192
	}
	if c.Frames <= 0 {
		c.Frames = 512
	}
	if c.Warm <= 0 {
		c.Warm = 2 * sim.Second
	}
	if c.Measure <= 0 {
		c.Measure = 8 * sim.Second
	}
	if c.TPCC.Warehouses == 0 {
		c.TPCC = workload.TPCCConfig{Warehouses: 2}
	}
	if c.TPCB.Branches == 0 {
		c.TPCB = workload.TPCBConfig{Branches: 24}
	}
	return c
}

func (c Fig4Config) newWorkload() workload.Workload {
	if c.Workload == "tpcb" {
		return workload.NewTPCB(c.TPCB)
	}
	return workload.NewTPCC(c.TPCC)
}

// Fig4Point is one (dies, association) measurement.
type Fig4Point struct {
	Dies        int
	Association storage.WriterAssociation
	TPS         float64
	SyncWrites  int64
	AsyncWrites int64
}

// Fig4Result collects both curves of one sub-figure.
type Fig4Result struct {
	Workload string
	Global   stats.Series
	DieWise  stats.Series
	Points   []Fig4Point
}

// Speedup returns the best die-wise/global TPS ratio across die counts
// (the paper reports up to 1.5x for TPC-C and 1.43x for TPC-B).
func (r *Fig4Result) Speedup() float64 { return r.DieWise.MaxRatio(&r.Global) }

// Table renders the figure as rows.
func (r *Fig4Result) Table() string {
	t := stats.NewTable("dies", "global TPS", "die-wise TPS", "speedup")
	for i := range r.Global.X {
		sp := 0.0
		if r.Global.Y[i] > 0 {
			sp = r.DieWise.Y[i] / r.Global.Y[i]
		}
		t.Row(int(r.Global.X[i]), r.Global.Y[i], r.DieWise.Y[i], sp)
	}
	return t.String()
}

// Figure4 reproduces Figure 4a (TPC-C) or 4b (TPC-B): NoFTL with
// die-wise striping, sweeping the number of dies with #db-writers =
// #dies, under global versus die-wise writer association.
func Figure4(cfg Fig4Config) (*Fig4Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig4Result{Workload: cfg.Workload}
	res.Global.Label = "global"
	res.DieWise.Label = "die-wise"
	for _, dies := range cfg.Dies {
		for _, assoc := range []storage.WriterAssociation{storage.AssocGlobal, storage.AssocDieWise} {
			tps, bs, err := figure4Point(cfg, dies, assoc)
			if err != nil {
				return nil, fmt.Errorf("figure4 dies=%d assoc=%v: %w", dies, assoc, err)
			}
			res.Points = append(res.Points, Fig4Point{
				Dies: dies, Association: assoc, TPS: tps,
				SyncWrites: bs.SyncWrites, AsyncWrites: bs.AsyncWrites,
			})
			if assoc == storage.AssocGlobal {
				res.Global.Add(float64(dies), tps)
			} else {
				res.DieWise.Add(float64(dies), tps)
			}
		}
	}
	return res, nil
}

func figure4Point(cfg Fig4Config, dies int, assoc storage.WriterAssociation) (float64, storage.BufferStats, error) {
	devCfg := flash.EmulatorConfig(dies, cfg.DriveMB, nand.SLC)
	sys, err := BuildSystem(StackNoFTL, devCfg, cfg.Frames)
	if err != nil {
		return 0, storage.BufferStats{}, err
	}
	r, err := RunTPS(sys, cfg.newWorkload(), TPSConfig{
		Workers:     cfg.Workers,
		Writers:     dies,
		Association: assoc,
		Warm:        cfg.Warm,
		Measure:     cfg.Measure,
		Seed:        cfg.Seed + int64(dies),
	})
	if err != nil {
		return 0, storage.BufferStats{}, err
	}
	return r.TPS, r.Buffer, nil
}
