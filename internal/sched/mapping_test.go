package sched

import (
	"testing"

	"noftl/internal/ioreq"
)

// TestFromRequestMapping pins the ioreq.Class → sched.Class mapping
// pair by pair: the two enums are declared independently and the
// conversion is arithmetic, so a reorder in either would silently
// misroute every tagged request without this table.
func TestFromRequestMapping(t *testing.T) {
	want := map[ioreq.Class]Class{
		ioreq.ClassRead:     ClassRead,
		ioreq.ClassWAL:      ClassWAL,
		ioreq.ClassProgram:  ClassProgram,
		ioreq.ClassPrefetch: ClassPrefetch,
		ioreq.ClassGC:       ClassGC,
	}
	for rc, sc := range want {
		got, ok := FromRequest(rc)
		if !ok || got != sc {
			t.Fatalf("FromRequest(%v) = %v,%v; want %v", rc, got, ok, sc)
		}
	}
	if _, ok := FromRequest(ioreq.ClassDefault); ok {
		t.Fatal("ClassDefault must report undeclared")
	}
	if _, ok := FromRequest(ioreq.NumClasses); ok {
		t.Fatal("out-of-range class must report undeclared")
	}
}
