package sched

import (
	"reflect"
	"testing"

	"noftl/internal/flash"
	"noftl/internal/nand"
	"noftl/internal/sim"
)

func testDev(dies int) *flash.Device {
	return flash.New(flash.Config{
		Geometry: nand.Geometry{
			Channels:        1,
			ChipsPerChannel: dies,
			DiesPerChip:     1,
			PlanesPerDie:    1,
			BlocksPerPlane:  8,
			PagesPerBlock:   8,
			PageSize:        512,
			OOBSize:         16,
		},
		Cell: nand.SLC,
		Nand: nand.Options{StoreData: true},
	})
}

// TestPriorityOrdering checks that a foreground read overtakes queued
// lower-priority work under Priority but not under FCFS.
func TestPriorityOrdering(t *testing.T) {
	for _, policy := range []Policy{FCFS, Priority} {
		dev := testDev(1)
		k := sim.New()
		s := New(k, dev, Config{Policy: policy})
		gcDev := s.Bind(ClassGC)
		rdDev := s.Bind(ClassRead)
		data := make([]byte, 512)

		// Preload page 0 so the read has something to fetch.
		if err := dev.ProgramPage(&sim.ClockWaiter{}, 0, data, nand.OOB{LPN: 1}); err != nil {
			t.Fatal(err)
		}
		dev.ResetTime()
		dev.ResetStats()

		var gcEnd, readEnd sim.Time
		// Two GC programs queue first (separate procs, so both are
		// pending at once); the read arrives one instant later.
		k.Go("gc1", func(p *sim.Proc) {
			if err := gcDev.ProgramPage(sim.ProcWaiter{P: p}, 8, data, nand.OOB{LPN: 2}); err != nil {
				t.Error(err)
			}
		})
		k.Go("gc2", func(p *sim.Proc) {
			if err := gcDev.ProgramPage(sim.ProcWaiter{P: p}, 9, data, nand.OOB{LPN: 3}); err != nil {
				t.Error(err)
			}
			gcEnd = p.Now()
		})
		k.Go("reader", func(p *sim.Proc) {
			p.Sleep(sim.Microsecond)
			w := sim.ProcWaiter{P: p}
			if _, err := rdDev.ReadPage(w, 0, nil); err != nil {
				t.Error(err)
			}
			readEnd = p.Now()
		})
		k.Run()
		k.Shutdown()

		switch policy {
		case Priority:
			// The read jumps ahead of the second (still queued) program.
			if readEnd >= gcEnd {
				t.Fatalf("priority: read finished at %v, after GC at %v", readEnd, gcEnd)
			}
		case FCFS:
			if readEnd <= gcEnd {
				t.Fatalf("fcfs: read finished at %v, before GC at %v", readEnd, gcEnd)
			}
		}
		st := s.Stats()
		if st.Scheduled[ClassRead] != 1 || st.Scheduled[ClassGC] != 2 {
			t.Fatalf("scheduled = %v", st.Scheduled)
		}
	}
}

// TestEraseSuspension checks that a read arriving mid-erase is served at
// suspension latency rather than waiting out tBERS, and that the erase
// still completes (with the suspend/resume penalty).
func TestEraseSuspension(t *testing.T) {
	dev := testDev(1)
	id := dev.Identify()
	k := sim.New()
	s := New(k, dev, Config{Policy: Priority})
	gcDev := s.Bind(ClassGC)
	rdDev := s.Bind(ClassRead)
	data := make([]byte, 512)

	// The read target lives in block 1; the erase hits block 0.
	if err := dev.ProgramPage(&sim.ClockWaiter{}, 8, data, nand.OOB{LPN: 1}); err != nil {
		t.Fatal(err)
	}
	dev.ResetTime()
	dev.ResetStats()

	var readLat, eraseEnd sim.Time
	k.Go("gc", func(p *sim.Proc) {
		if err := gcDev.EraseBlock(sim.ProcWaiter{P: p}, 0); err != nil {
			t.Error(err)
		}
		eraseEnd = p.Now()
	})
	k.Go("reader", func(p *sim.Proc) {
		p.Sleep(200 * sim.Microsecond) // well inside the 1.5ms erase
		t0 := p.Now()
		if _, err := rdDev.ReadPage(sim.ProcWaiter{P: p}, 8, nil); err != nil {
			t.Error(err)
		}
		readLat = p.Now() - t0
	})
	k.Run()
	k.Shutdown()

	// Without suspension the read would wait ~1.3ms for the erase; with
	// it, the wait is tSUS + service.
	maxRead := id.Timing.EraseSuspend + id.Timing.ReadPage + id.TransferPage + 4*id.CmdOverhead
	if readLat > maxRead {
		t.Fatalf("read latency %v, want <= %v (suspension broken)", readLat, maxRead)
	}
	minErase := id.CmdOverhead + id.Timing.EraseBlock + id.Timing.EraseSuspend + id.Timing.EraseResume
	if eraseEnd < minErase {
		t.Fatalf("erase finished at %v, too early for a suspended erase (min %v)", eraseEnd, minErase)
	}
	st := s.Stats()
	if st.EraseSuspends != 1 {
		t.Fatalf("EraseSuspends = %d, want 1", st.EraseSuspends)
	}
	if dev.Stats().EraseSuspends != 1 {
		t.Fatalf("device EraseSuspends = %d, want 1", dev.Stats().EraseSuspends)
	}
	if dev.Stats().Erases != 1 {
		t.Fatalf("device Erases = %d, want 1", dev.Stats().Erases)
	}
	// The array state must reflect the committed erase.
	if dev.Array().EraseCount(0) != 1 {
		t.Fatalf("block 0 erase count = %d, want 1", dev.Array().EraseCount(0))
	}
}

// TestReadNeverOvertakesProgramToSamePage checks the RAW hazard: a
// prioritized read of a page with a queued program must wait for the
// program, or it would observe the old (erased) state.
func TestReadNeverOvertakesProgramToSamePage(t *testing.T) {
	dev := testDev(1)
	k := sim.New()
	s := New(k, dev, Config{Policy: Priority})
	gcDev := s.Bind(ClassGC)
	rdDev := s.Bind(ClassRead)
	data := make([]byte, 512)
	for i := range data {
		data[i] = 0xAB
	}

	got := make([]byte, 512)
	k.Go("writer", func(p *sim.Proc) {
		w := sim.ProcWaiter{P: p}
		// Occupy the die first so the program queues behind it.
		if err := gcDev.EraseBlock(w, 3); err != nil {
			t.Error(err)
		}
	})
	k.Go("writer2", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond)
		if err := gcDev.ProgramPage(sim.ProcWaiter{P: p}, 0, data, nand.OOB{LPN: 7}); err != nil {
			t.Error(err)
		}
	})
	k.Go("reader", func(p *sim.Proc) {
		p.Sleep(2 * sim.Microsecond)
		if _, err := rdDev.ReadPage(sim.ProcWaiter{P: p}, 0, got); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	k.Shutdown()
	if got[0] != 0xAB {
		t.Fatalf("read returned %#x, want 0xAB: it overtook the program", got[0])
	}
}

// TestSerialCallersBypass checks that ClockWaiter callers skip the
// queues entirely (load phases must not need a running kernel).
func TestSerialCallersBypass(t *testing.T) {
	dev := testDev(1)
	k := sim.New()
	s := New(k, dev, Config{Policy: Priority})
	d := s.Bind(ClassProgram)
	w := &sim.ClockWaiter{}
	if err := d.ProgramPage(w, 0, make([]byte, 512), nand.OOB{LPN: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Bind(ClassRead).ReadPage(w, 0, nil); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.TotalScheduled() != 0 {
		t.Fatalf("serial ops were queued: %v", st.Scheduled)
	}
	if st.Bypassed != 2 {
		t.Fatalf("Bypassed = %d, want 2", st.Bypassed)
	}
}

// TestSchedulerDeterminism runs the same op soup twice and expects
// identical device stats and scheduler stats.
func TestSchedulerDeterminism(t *testing.T) {
	run := func() (flash.Stats, Stats) {
		dev := testDev(2)
		k := sim.New()
		s := New(k, dev, Config{Policy: Priority})
		data := make([]byte, 512)
		for i := 0; i < 3; i++ {
			i := i
			cl := []Class{ClassRead, ClassProgram, ClassGC}[i]
			d := s.Bind(cl)
			k.Go("mixer", func(p *sim.Proc) {
				w := sim.ProcWaiter{P: p}
				for j := 0; j < 20; j++ {
					ppn := nand.PPN((i*20 + j) % 64)
					switch cl {
					case ClassRead:
						d.ReadPage(w, ppn, nil)
					case ClassGC:
						if j%5 == 0 {
							d.EraseBlock(w, nand.PBN(8+(j/5)%4))
						} else {
							d.ProgramPage(w, nand.PPN(64+i*20+j), data, nand.OOB{LPN: uint64(j)})
						}
					default:
						d.ProgramPage(w, nand.PPN(128+i*20+j), data, nand.OOB{LPN: uint64(j)})
					}
					p.Sleep(sim.Time(j%7) * sim.Microsecond)
				}
			})
		}
		k.Run()
		k.Shutdown()
		return dev.Stats(), s.Stats()
	}
	d1, s1 := run()
	d2, s2 := run()
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("device stats diverged:\n%+v\n%+v", d1, d2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("scheduler stats diverged:\n%+v\n%+v", s1, s2)
	}
}
