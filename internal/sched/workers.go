package sched

import (
	"fmt"

	"noftl/internal/ioreq"
	"noftl/internal/sim"
)

// GCDriver is the volume-side contract for background garbage
// collection: the NeedsGC/GCStep hooks a noftl.Volume exposes per region
// (die). Background workers drive it so space reclamation never runs on
// the commit path. The request descriptor carries the workers' declared
// class (GC) so maintenance traffic is tagged at its origin.
type GCDriver interface {
	Regions() int
	NeedsGC(region int) bool
	GCStep(rq ioreq.Req, region int) (bool, error)
}

// WearLeveler extends GCDriver with the background wear-leveling sweep
// contract: per-region erase-count spread and a cold-block migration
// step. noftl.Volume implements it.
type WearLeveler interface {
	WearSpread(region int) int
	WearLevelStep(rq ioreq.Req, region int) (bool, error)
}

// MaintConfig tunes StartMaintenance.
type MaintConfig struct {
	// Interval is the GC workers' idle poll period. Default 200µs.
	Interval sim.Time
	// SweepEvery is the wear-leveling sweep period. Default 50ms;
	// negative disables the sweep.
	SweepEvery sim.Time
	// OnError receives the first fatal maintenance error (nil: ignored).
	OnError func(error)
}

func (c MaintConfig) withDefaults() MaintConfig {
	if c.Interval <= 0 {
		c.Interval = 200 * sim.Microsecond
	}
	if c.SweepEvery == 0 {
		c.SweepEvery = 50 * sim.Millisecond
	}
	return c
}

// Maintenance is the handle over a running worker set.
type Maintenance struct {
	// GCSteps counts successful background GC victim collections.
	GCSteps int64
	// WearMoves counts cold-block migrations done by the sweep.
	WearMoves int64
	stopped   bool
}

// Stop halts the workers; they drain at their next poll.
func (m *Maintenance) Stop() { m.stopped = true }

// Stopped reports whether Stop has been called.
func (m *Maintenance) Stopped() bool { return m.stopped }

// StartMaintenance launches the DBMS's background flash-maintenance
// processes on kernel k: one GC worker per region driving GCStep while
// NeedsGC, plus — when gc also implements WearLeveler — a wear-leveling
// sweep that each period migrates cold blocks in the region with the
// widest erase-count spread. This is the paper's argument made
// concrete: maintenance runs when the DBMS schedules it, not when
// firmware decides mid-commit.
func StartMaintenance(k *sim.Kernel, gc GCDriver, cfg MaintConfig) *Maintenance {
	cfg = cfg.withDefaults()
	mt := &Maintenance{}
	fail := func(err error) {
		if cfg.OnError != nil {
			cfg.OnError(err)
		}
	}
	for r := 0; r < gc.Regions(); r++ {
		r := r
		k.Go(fmt.Sprintf("gc-worker%d", r), func(p *sim.Proc) {
			rq := ioreq.Req{W: sim.ProcWaiter{P: p}, Class: ioreq.ClassGC}
			for !mt.stopped {
				if gc.NeedsGC(r) {
					did, err := gc.GCStep(rq, r)
					if err != nil {
						fail(err)
						return
					}
					if did {
						mt.GCSteps++
						continue
					}
				}
				p.Sleep(cfg.Interval)
			}
		})
	}
	wl, ok := gc.(WearLeveler)
	if !ok || cfg.SweepEvery < 0 {
		return mt
	}
	k.Go("wear-sweep", func(p *sim.Proc) {
		rq := ioreq.Req{W: sim.ProcWaiter{P: p}, Class: ioreq.ClassGC}
		for !mt.stopped {
			p.Sleep(cfg.SweepEvery)
			if mt.stopped {
				return
			}
			// Sweep the region with the widest erase-count spread first;
			// ties break toward the lowest region for determinism.
			best, spread := -1, 0
			for r := 0; r < gc.Regions(); r++ {
				if s := wl.WearSpread(r); s > spread {
					best, spread = r, s
				}
			}
			if best < 0 {
				continue
			}
			did, err := wl.WearLevelStep(rq, best)
			if err != nil {
				fail(err)
				return
			}
			if did {
				mt.WearMoves++
			}
		}
	})
	return mt
}
