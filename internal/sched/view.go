package sched

import (
	"noftl/internal/flash"
	"noftl/internal/ioreq"
	"noftl/internal/nand"
	"noftl/internal/sim"
)

// view is a flash.Dev that issues every command through the scheduler at
// a fixed priority class. Host-side managers hold one view per command
// class (noftl.ClassDevs) and stay oblivious to the scheduling.
//
// The view's class is only the fallback: a request descriptor riding on
// the waiter (ioreq.Tagged) overrides it, so the die queue dispatches on
// the class the request declared at its origin — the engine, a workload
// terminal, a background worker — rather than on whichever device view
// the volume happened to route the command through.
type view struct {
	s *Scheduler
	c Class
}

// Bind returns a flash.Dev issuing commands at class c.
func (s *Scheduler) Bind(c Class) flash.Dev { return view{s: s, c: c} }

// Identify forwards the native IDENTIFY command.
func (v view) Identify() flash.Identity { return v.s.dev.Identify() }

// Geometry returns the device geometry.
func (v view) Geometry() nand.Geometry { return v.s.dev.Geometry() }

// Array exposes the underlying NAND array for state inspection.
func (v view) Array() *nand.Array { return v.s.dev.Array() }

// submit queues r on the die and parks the caller until the dispatcher
// completes it. It reports false for serial callers (no DES process on
// this kernel), who must bypass the queues. A request descriptor riding
// on the waiter overrides the view's class and attaches its stream tag
// and deadline to the queued command.
//
// A telemetry span riding on the descriptor sees the whole parked
// window as its scheduler-queue stage; after completion, the service
// part (dispatch to end, known from the request's recorded dispatch
// time) is transferred to the die stage, splitting queue wait from die
// service exactly.
func (v view) submit(w sim.Waiter, r *request, die int) bool {
	cls, retagged := v.c, false
	var sp *ioreq.Span
	if t, ok := w.(*ioreq.Tagged); ok {
		if c, declared := FromRequest(t.Class); declared {
			retagged = c != cls
			cls = c
		}
		r.tag = t.Tag
		r.deadline = t.Deadline
		sp = t.Span
		w = t.Inner
	}
	pw, ok := w.(sim.ProcWaiter)
	if !ok || pw.P.Kernel() != v.s.k {
		v.s.stats.Bypassed++
		return false
	}
	if retagged {
		v.s.stats.Retagged++
	}
	r.class = cls
	r.arrival = pw.P.Now()
	if sp != nil {
		sp.Cmds++
		sp.Enter(ioreq.StageSchedQ, r.arrival)
		r.span = sp.ID
	}
	v.s.dies[die].enqueue(r)
	r.done.Wait(pw.P)
	if sp != nil {
		end := pw.P.Now()
		sp.Exit(end)
		sp.Transfer(ioreq.StageSchedQ, ioreq.StageDie, end-r.start)
	}
	return true
}

// ReadPage implements flash.Dev.
func (v view) ReadPage(w sim.Waiter, p nand.PPN, buf []byte) (nand.OOB, error) {
	if !v.s.geo.ValidPPN(p) {
		return v.s.dev.ReadPage(w, p, buf)
	}
	r := &request{op: opRead, ppn: p, buf: buf}
	if !v.submit(w, r, v.s.geo.DieOf(p)) {
		return v.s.dev.ReadPage(w, p, buf)
	}
	return r.oobOut, r.err
}

// ProgramPage implements flash.Dev.
func (v view) ProgramPage(w sim.Waiter, p nand.PPN, data []byte, oob nand.OOB) error {
	if !v.s.geo.ValidPPN(p) {
		return v.s.dev.ProgramPage(w, p, data, oob)
	}
	r := &request{op: opProgram, ppn: p, data: data, oob: oob}
	if !v.submit(w, r, v.s.geo.DieOf(p)) {
		return v.s.dev.ProgramPage(w, p, data, oob)
	}
	return r.err
}

// ProgramPartial implements flash.Dev.
func (v view) ProgramPartial(w sim.Waiter, p nand.PPN, off int, data []byte, oob nand.OOB) error {
	if !v.s.geo.ValidPPN(p) {
		return v.s.dev.ProgramPartial(w, p, off, data, oob)
	}
	r := &request{op: opPartial, ppn: p, off: off, data: data, oob: oob}
	if !v.submit(w, r, v.s.geo.DieOf(p)) {
		return v.s.dev.ProgramPartial(w, p, off, data, oob)
	}
	return r.err
}

// EraseBlock implements flash.Dev.
func (v view) EraseBlock(w sim.Waiter, b nand.PBN) error {
	if !v.s.geo.ValidPBN(b) {
		return v.s.dev.EraseBlock(w, b)
	}
	r := &request{op: opErase, pbn: b}
	if !v.submit(w, r, v.s.geo.DieOfBlock(b)) {
		return v.s.dev.EraseBlock(w, b)
	}
	return r.err
}

// Copyback implements flash.Dev.
func (v view) Copyback(w sim.Waiter, src, dst nand.PPN, newOOB *nand.OOB) error {
	if !v.s.geo.ValidPPN(src) || !v.s.geo.ValidPPN(dst) {
		return v.s.dev.Copyback(w, src, dst, newOOB)
	}
	r := &request{op: opCopyback, ppn: src, dst: dst, oobPtr: newOOB}
	if !v.submit(w, r, v.s.geo.DieOf(src)) {
		return v.s.dev.Copyback(w, src, dst, newOOB)
	}
	return r.err
}

var _ flash.Dev = view{}
