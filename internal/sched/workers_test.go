package sched

import (
	"testing"

	"noftl/internal/ioreq"
	"noftl/internal/sim"
)

// fakeDriver is a scripted GCDriver+WearLeveler for worker-loop tests.
type fakeDriver struct {
	regions int
	dirty   []int // pending GC steps per region
	gcSteps []int
	spread  []int
	wlSteps []int
}

func (f *fakeDriver) Regions() int         { return f.regions }
func (f *fakeDriver) NeedsGC(r int) bool   { return f.dirty[r] > 0 }
func (f *fakeDriver) WearSpread(r int) int { return f.spread[r] }

func (f *fakeDriver) GCStep(rq ioreq.Req, r int) (bool, error) {
	if rq.Class != ioreq.ClassGC {
		panic("maintenance request not declared GC class")
	}
	if f.dirty[r] == 0 {
		return false, nil
	}
	f.dirty[r]--
	f.gcSteps[r]++
	w := rq.W
	w.WaitUntil(w.Now() + 100*sim.Microsecond) // a step costs device time
	return true, nil
}

func (f *fakeDriver) WearLevelStep(rq ioreq.Req, r int) (bool, error) {
	if f.spread[r] == 0 {
		return false, nil
	}
	f.spread[r] = 0
	f.wlSteps[r]++
	w := rq.W
	w.WaitUntil(w.Now() + 500*sim.Microsecond)
	return true, nil
}

func TestMaintenanceDrivesGCAndWearSweep(t *testing.T) {
	k := sim.New()
	f := &fakeDriver{
		regions: 3,
		dirty:   []int{5, 0, 2},
		gcSteps: make([]int, 3),
		spread:  []int{0, 80, 10},
		wlSteps: make([]int, 3),
	}
	mt := StartMaintenance(k, f, MaintConfig{SweepEvery: 10 * sim.Millisecond})
	k.RunFor(50 * sim.Millisecond)
	mt.Stop()
	k.RunFor(5 * sim.Millisecond)
	k.Shutdown()

	if f.gcSteps[0] != 5 || f.gcSteps[1] != 0 || f.gcSteps[2] != 2 {
		t.Fatalf("gcSteps = %v, want [5 0 2]", f.gcSteps)
	}
	if mt.GCSteps != 7 {
		t.Fatalf("GCSteps = %d, want 7", mt.GCSteps)
	}
	// The sweep must clean the widest-spread region first, then the next.
	if f.wlSteps[1] != 1 || f.wlSteps[2] != 1 || f.wlSteps[0] != 0 {
		t.Fatalf("wlSteps = %v, want [0 1 1]", f.wlSteps)
	}
	if mt.WearMoves != 2 {
		t.Fatalf("WearMoves = %d, want 2", mt.WearMoves)
	}
}

func TestMaintenanceReportsErrors(t *testing.T) {
	k := sim.New()
	f := &failingDriver{}
	var got error
	mt := StartMaintenance(k, f, MaintConfig{SweepEvery: -1, OnError: func(err error) { got = err }})
	k.RunFor(5 * sim.Millisecond)
	mt.Stop()
	k.Shutdown()
	if got == nil {
		t.Fatal("worker error not reported")
	}
}

type failingDriver struct{}

func (failingDriver) Regions() int     { return 1 }
func (failingDriver) NeedsGC(int) bool { return true }
func (failingDriver) GCStep(ioreq.Req, int) (bool, error) {
	return false, errBoom
}

var errBoom = errStr("boom")

type errStr string

func (e errStr) Error() string { return string(e) }
