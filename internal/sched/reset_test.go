package sched

import (
	"reflect"
	"testing"

	"noftl/internal/flash"
	"noftl/internal/nand"
	"noftl/internal/sim"
)

// phase runs one self-contained measurement stack against dev: a fresh
// kernel, a fresh scheduler, concurrent per-die clients doing
// program/read/erase rounds that leave the array erased again. It
// returns the device and scheduler stats the stack observed.
func phase(t *testing.T, dev *flash.Device) (flash.Stats, Stats) {
	t.Helper()
	k := sim.New()
	s := New(k, dev, Config{Policy: Priority})
	geo := dev.Geometry()
	data := make([]byte, geo.PageSize)
	for die := 0; die < geo.Dies(); die++ {
		die := die
		k.Go("client", func(p *sim.Proc) {
			w := sim.ProcWaiter{P: p}
			first := geo.FirstPage(geo.PBNOf(die, 0, 0))
			prog := s.Bind(ClassProgram)
			rd := s.Bind(ClassRead)
			gc := s.Bind(ClassGC)
			for pg := 0; pg < 4; pg++ {
				if err := prog.ProgramPage(w, first+nand.PPN(pg), data, nand.OOB{LPN: uint64(pg)}); err != nil {
					t.Error(err)
				}
			}
			for pg := 0; pg < 4; pg++ {
				if _, err := rd.ReadPage(w, first+nand.PPN(pg), nil); err != nil {
					t.Error(err)
				}
			}
			if err := gc.EraseBlock(w, geo.PBNOf(die, 0, 0)); err != nil {
				t.Error(err)
			}
		})
	}
	k.Run()
	k.Shutdown()
	return dev.Stats(), s.Stats()
}

// TestResetBetweenStacks is the regression test for splicing bench
// stacks on one device: after ResetTime+ResetStats, a second stack must
// observe exactly what a stack on a virgin device observes — no stale
// per-die busy-until times, no inherited queue-wait counters.
func TestResetBetweenStacks(t *testing.T) {
	cfg := flash.Config{
		Geometry: nand.Geometry{
			Channels:        2,
			ChipsPerChannel: 2,
			DiesPerChip:     1,
			PlanesPerDie:    1,
			BlocksPerPlane:  8,
			PagesPerBlock:   8,
			PageSize:        512,
			OOBSize:         16,
		},
		Cell: nand.SLC,
		Nand: nand.Options{StoreData: true},
	}

	dev := flash.New(cfg)
	first, _ := phase(t, dev)
	if first.QueuedCmds == 0 || first.QueueWait < 0 {
		t.Fatalf("first stack recorded no queueing: %+v", first)
	}
	dev.ResetTime()
	dev.ResetStats()
	if got := dev.Stats(); got.QueuedCmds != 0 || got.QueueWait != 0 || got.EraseSuspends != 0 {
		t.Fatalf("reset left queue-wait counters: %+v", got)
	}
	second, schedSecond := phase(t, dev)

	virgin := flash.New(cfg)
	want, schedWant := phase(t, virgin)

	// Erase counts differ (wear persists across stacks by design), but
	// every timing and counter the bench reads must match a virgin run.
	if !reflect.DeepEqual(second, want) {
		t.Fatalf("second stack inherited state through the reset:\n got %+v\nwant %+v", second, want)
	}
	if !reflect.DeepEqual(schedSecond, schedWant) {
		t.Fatalf("scheduler stats inherited state:\n got %+v\nwant %+v", schedSecond, schedWant)
	}
}

// TestResetClearsSchedulerAccounting checks the reset hook wiring: the
// scheduler registered on the device is reset by both ResetTime and
// ResetStats.
func TestResetClearsSchedulerAccounting(t *testing.T) {
	dev := testDev(1)
	k := sim.New()
	s := New(k, dev, Config{})
	d := s.Bind(ClassProgram)
	k.Go("w", func(p *sim.Proc) {
		if err := d.ProgramPage(sim.ProcWaiter{P: p}, 0, make([]byte, 512), nand.OOB{LPN: 1}); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	k.Shutdown()
	if st := s.Stats(); st.TotalScheduled() != 1 {
		t.Fatalf("scheduled = %d, want 1", st.TotalScheduled())
	}
	dev.ResetTime()
	if st := s.Stats(); st.TotalScheduled() != 0 {
		t.Fatal("ResetTime did not clear scheduler accounting")
	}
}
