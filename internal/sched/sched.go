// Package sched implements a native flash command scheduler: the layer
// the NoFTL architecture puts between host-side flash management and the
// raw device so the DBMS — not device firmware — decides how commands
// interleave on every die.
//
// Each die gets a command queue and a dispatcher process on the DES
// kernel. Commands carry a priority class (foreground read > WAL append
// > data program > prefetch read > GC work) and the dispatcher serves the
// highest-priority hazard-free command first; under the FCFS policy it
// degrades to plain arrival order, which is what an on-device FTL behind
// a legacy interface effectively gives the host. Because reordering must
// never break flash state dependencies, the dispatcher tracks hazards:
// a read never overtakes a pending program to the same page, and nothing
// overtakes a pending erase of its own block.
//
// Erases are the latency killers (tBERS is ~60x tR on SLC), so the
// dispatcher runs them suspendable: when a foreground read arrives while
// an erase is in flight, the erase is suspended (ERASE SUSPEND latency),
// the read is served, and the erase resumes with a resume penalty —
// bounding read tail latency at roughly tSUS+tR instead of tBERS.
// Suspensions per erase are capped so erases cannot starve.
//
// Queue waits are accounted per class and surfaced both here (Stats) and
// through flash.Device.Stats (NoteQueueWait); the optional Trace hook
// emits one Event per command for offline analysis (trace.CmdLog).
//
// Serial callers (sim.ClockWaiter phases: loads, trace replays, rebuild
// scans) bypass the queues entirely — there is nothing to schedule when
// one synchronous client owns the device.
package sched

import (
	"fmt"

	"noftl/internal/flash"
	"noftl/internal/ioreq"
	"noftl/internal/nand"
	"noftl/internal/sim"
)

// Class is a command priority class. Lower values are served first under
// the Priority policy.
type Class uint8

// Priority classes, highest first.
const (
	ClassRead     Class = iota // foreground page reads (query latency)
	ClassWAL                   // log appends (commit path)
	ClassProgram               // data page programs and delta appends
	ClassPrefetch              // speculative read-ahead (analytical scans)
	ClassGC                    // GC copies, folds, erases, wear moves
	NumClasses
)

// FromRequest maps a request descriptor's declared class (ioreq.Class)
// onto a scheduler class. It reports false for ClassDefault (or an
// out-of-range value): the caller falls back to its static per-view
// class — the pre-descriptor routing.
func FromRequest(c ioreq.Class) (Class, bool) {
	if c == ioreq.ClassDefault || c > ioreq.ClassGC {
		return 0, false
	}
	return Class(c - 1), true
}

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassRead:
		return "read"
	case ClassWAL:
		return "wal"
	case ClassProgram:
		return "program"
	case ClassPrefetch:
		return "prefetch"
	case ClassGC:
		return "gc"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Policy selects the queue discipline.
type Policy uint8

// Queue disciplines.
const (
	// FCFS serves commands in arrival order (the firmware-FTL baseline).
	FCFS Policy = iota
	// Priority serves the highest class first and suspends in-flight
	// erases for queued reads.
	Priority
)

// String names the policy.
func (p Policy) String() string {
	if p == Priority {
		return "priority"
	}
	return "fcfs"
}

// Config tunes a Scheduler.
type Config struct {
	// Policy selects the queue discipline. Default FCFS.
	Policy Policy
	// DisableSuspend turns off erase suspension under Priority.
	DisableSuspend bool
	// MaxSuspends bounds suspensions per erase so reads cannot starve an
	// erase forever. Default 4.
	MaxSuspends int
	// GCAgeLimit promotes a GC command that has waited longer than this
	// to the head of its die's queue (starvation guard for free-block
	// reclamation under read-heavy load). Default 10ms; negative
	// disables.
	GCAgeLimit sim.Time
	// Trace receives one Event per dispatched command (nil: off).
	Trace func(Event)
}

func (c Config) withDefaults() Config {
	if c.MaxSuspends == 0 {
		c.MaxSuspends = 4
	}
	if c.GCAgeLimit == 0 {
		c.GCAgeLimit = 10 * sim.Millisecond
	}
	return c
}

// Stats is scheduler-level accounting. The per-class rows count the
// class each command actually dispatched at: a request-declared class
// (ioreq) when the descriptor carried one, the issuing view's static
// class otherwise — so attribution is exact even when e.g. GC traffic
// was issued through a foreground device view.
type Stats struct {
	Scheduled     [NumClasses]int64    // commands dispatched per class
	QueueWait     [NumClasses]sim.Time // accumulated queue wait per class
	MaxWait       [NumClasses]sim.Time // worst queue wait per class
	Bypassed      int64                // serial commands that skipped the queues
	EraseSuspends int64
	Promotions    int64 // aged GC commands served ahead of their class
	// Retagged counts commands whose dispatch class came from the
	// request descriptor rather than the issuing view.
	Retagged int64
	// DeadlinePromotions counts commands served ahead of their class
	// because their request deadline had passed.
	DeadlinePromotions int64
}

// MeanWait returns the average queue wait of a class.
func (s *Stats) MeanWait(c Class) sim.Time {
	if s.Scheduled[c] == 0 {
		return 0
	}
	return s.QueueWait[c] / sim.Time(s.Scheduled[c])
}

// TotalScheduled sums dispatched commands over all classes.
func (s *Stats) TotalScheduled() int64 {
	var n int64
	for _, v := range s.Scheduled {
		n += v
	}
	return n
}

// Event describes one dispatched command for the trace hook.
type Event struct {
	Die      int
	Class    Class
	Tag      uint32 // request stream tag (0: untagged)
	Op       string // "read","program","partial","erase","copyback"
	Arrival  sim.Time
	Start    sim.Time // dispatch time (Start-Arrival is the queue wait)
	End      sim.Time
	Suspends int // erase suspensions taken during this command
	// Span is the telemetry span the command's request rode on (0: none);
	// it joins the command log against retained ioreq.Spans for blame
	// attribution.
	Span uint64
	// Block is the physical block the command mutates — the program
	// target for program/partial/copyback, the erased block for erase,
	// -1 for reads. It feeds same-block program-order hazard
	// classification in blame analysis.
	Block int64
}

// Command op kinds.
const (
	opRead uint8 = iota
	opProgram
	opPartial
	opErase
	opCopyback
)

func opName(op uint8) string {
	switch op {
	case opRead:
		return "read"
	case opProgram:
		return "program"
	case opPartial:
		return "partial"
	case opErase:
		return "erase"
	default:
		return "copyback"
	}
}

// request is one queued command. Queue position (the reqs slice) is the
// arrival order; there is no separate sequence number.
type request struct {
	op       uint8
	class    Class
	tag      uint32   // request stream tag (trace attribution)
	span     uint64   // telemetry span ID riding the request (0: none)
	deadline sim.Time // past it, the command outranks its class (0: none)
	arrival  sim.Time
	start    sim.Time // dispatch time (set by account; spans split queue/die on it)

	ppn    nand.PPN // read/program/partial target, copyback source
	dst    nand.PPN // copyback destination
	pbn    nand.PBN // erase target
	off    int
	data   []byte
	oob    nand.OOB
	oobPtr *nand.OOB
	buf    []byte

	oobOut     nand.OOB
	err        error
	promoted   bool
	dlPromoted bool
	done       sim.Signal
}

// touches returns the pages a non-erase command reads or programs.
func (r *request) touches() (a, b nand.PPN, n int) {
	switch r.op {
	case opRead, opProgram, opPartial:
		return r.ppn, 0, 1
	case opCopyback:
		return r.ppn, r.dst, 2
	default:
		return 0, 0, 0
	}
}

// programTarget returns the block a command programs into, if any
// (programs and partials target their page's block, copybacks their
// destination's).
func (r *request) programTarget(geo nand.Geometry) (nand.PBN, bool) {
	switch r.op {
	case opProgram, opPartial:
		return geo.BlockOf(r.ppn), true
	case opCopyback:
		return geo.BlockOf(r.dst), true
	default:
		return 0, false
	}
}

// conflict reports whether two commands on the same die must not be
// reordered: they touch the same page, they program into the same block
// (NAND requires pages of a block to be programmed in order, so two
// programs to one block must keep their arrival order even across
// priority classes), or one erases the block the other touches.
// Serving them in arrival order is always safe.
func conflict(geo nand.Geometry, a, b *request) bool {
	if pa, ok := a.programTarget(geo); ok {
		if pb, ok := b.programTarget(geo); ok && pa == pb {
			return true
		}
	}
	if a.op == opErase || b.op == opErase {
		if a.op == opErase && b.op == opErase {
			return a.pbn == b.pbn
		}
		er, other := a, b
		if b.op == opErase {
			er, other = b, a
		}
		p1, p2, n := other.touches()
		if n >= 1 && geo.BlockOf(p1) == er.pbn {
			return true
		}
		if n >= 2 && geo.BlockOf(p2) == er.pbn {
			return true
		}
		return false
	}
	a1, a2, an := a.touches()
	b1, b2, bn := b.touches()
	if an >= 1 && bn >= 1 && a1 == b1 {
		return true
	}
	if an >= 1 && bn >= 2 && a1 == b2 {
		return true
	}
	if an >= 2 && bn >= 1 && a2 == b1 {
		return true
	}
	if an >= 2 && bn >= 2 && a2 == b2 {
		return true
	}
	return false
}

// Scheduler is the native command scheduler over one flash device.
type Scheduler struct {
	k     *sim.Kernel
	dev   *flash.Device
	cfg   Config
	id    flash.Identity
	geo   nand.Geometry
	dies  []*dieSched
	stats Stats
}

// New builds a scheduler over dev with one dispatcher process per die on
// kernel k. The dispatchers live until the kernel shuts down. The
// scheduler registers a device reset hook so ResetTime/ResetStats clear
// its wait accounting along with the device's.
func New(k *sim.Kernel, dev *flash.Device, cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{k: k, dev: dev, cfg: cfg, id: dev.Identify(), geo: dev.Geometry()}
	for die := 0; die < s.geo.Dies(); die++ {
		ds := &dieSched{s: s, die: die, alarm: sim.NewAlarm(k)}
		s.dies = append(s.dies, ds)
		k.Go(fmt.Sprintf("sched-die%d", die), ds.run)
	}
	dev.OnReset(s.Reset)
	return s
}

// Device returns the scheduled device.
func (s *Scheduler) Device() *flash.Device { return s.dev }

// Policy returns the configured queue discipline.
func (s *Scheduler) Policy() Policy { return s.cfg.Policy }

// Stats returns a snapshot of scheduler accounting.
func (s *Scheduler) Stats() Stats { return s.stats }

// Reset clears the scheduler's wait accounting. The device calls it from
// ResetTime/ResetStats via OnReset; queued commands (none between bench
// phases) are unaffected.
func (s *Scheduler) Reset() { s.stats = Stats{} }

// QueueDepth reports the number of commands currently queued on a die.
func (s *Scheduler) QueueDepth(die int) int { return len(s.dies[die].reqs) }

// QueueDepths reports every die's current queue depth (index = die) —
// the health probe's per-die load row.
func (s *Scheduler) QueueDepths() []int {
	out := make([]int, len(s.dies))
	for i, d := range s.dies {
		out[i] = len(d.reqs)
	}
	return out
}

func (s *Scheduler) suspendable() bool {
	return s.cfg.Policy == Priority && !s.cfg.DisableSuspend
}

// dieSched is one die's queue plus its dispatcher state.
type dieSched struct {
	s       *Scheduler
	die     int
	reqs    []*request
	alarm   *sim.Alarm
	idle    bool
	erasing bool     // an erase is in its suspendable window
	inErase *request // erase being served (suspension hazard source)
}

// suspendsErase reports whether a command class is urgent enough to
// suspend an in-flight erase: foreground reads (query latency) and WAL
// appends (commit latency). tBERS is the one device latency the commit
// path must never eat whole.
func suspendsErase(c Class) bool { return c <= ClassWAL }

// enqueue adds a request and pokes the dispatcher: an idle dispatcher
// wakes to serve it; an erasing dispatcher is interrupted only by a
// command urgent enough to suspend the erase.
func (ds *dieSched) enqueue(r *request) {
	ds.reqs = append(ds.reqs, r)
	if ds.idle {
		ds.alarm.Interrupt()
	} else if ds.erasing && suspendsErase(r.class) {
		ds.alarm.Interrupt()
	}
}

// blocked reports whether reqs[i] has a hazard against an older pending
// request or the in-flight erase. The oldest request is never blocked,
// so the queue always drains.
func (ds *dieSched) blocked(i int) bool {
	r := ds.reqs[i]
	if ds.inErase != nil && conflict(ds.s.geo, ds.inErase, r) {
		return true
	}
	for j := 0; j < i; j++ {
		if conflict(ds.s.geo, ds.reqs[j], r) {
			return true
		}
	}
	return false
}

// effClass is the class used for ordering: GC commands past the age
// limit are promoted to the front so sustained foreground traffic cannot
// starve free-block reclamation, and a command whose request deadline
// has passed outranks its class (the descriptor's QoS escape hatch).
func (ds *dieSched) effClass(r *request, now sim.Time) Class {
	if r.deadline > 0 && now >= r.deadline && r.class > ClassRead {
		return ClassRead
	}
	if r.class == ClassGC && ds.s.cfg.GCAgeLimit > 0 && now-r.arrival > ds.s.cfg.GCAgeLimit {
		return ClassRead
	}
	return r.class
}

// pop removes and returns the next hazard-free command: the oldest under
// FCFS, the best (class, then arrival) under Priority. urgentOnly
// restricts candidates to erase-suspending classes (the suspension
// window).
func (ds *dieSched) pop(urgentOnly bool) *request {
	if len(ds.reqs) == 0 {
		return nil
	}
	now := ds.s.k.Now()
	prio := ds.s.cfg.Policy == Priority
	best := -1
	for i, r := range ds.reqs {
		if urgentOnly && !suspendsErase(r.class) {
			continue
		}
		if ds.blocked(i) {
			continue
		}
		if best < 0 {
			best = i
			if !prio {
				break
			}
			continue
		}
		if prio && ds.effClass(r, now) < ds.effClass(ds.reqs[best], now) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	r := ds.reqs[best]
	if prio && ds.effClass(r, now) != r.class {
		if r.deadline > 0 && now >= r.deadline {
			r.dlPromoted = true
		} else if r.class == ClassGC {
			r.promoted = true
		}
	}
	ds.reqs = append(ds.reqs[:best], ds.reqs[best+1:]...)
	return r
}

// run is the dispatcher loop: one command in service per die at a time.
func (ds *dieSched) run(p *sim.Proc) {
	for {
		r := ds.pop(false)
		if r == nil {
			ds.idle = true
			ds.alarm.Wait(p, -1)
			ds.idle = false
			continue
		}
		if r.op == opErase && ds.s.suspendable() {
			ds.serveErase(p, r)
		} else {
			ds.serve(p, r)
		}
	}
}

// account records the queue wait of a command being dispatched.
func (ds *dieSched) account(r *request, now sim.Time) {
	r.start = now
	wait := now - r.arrival
	st := &ds.s.stats
	st.Scheduled[r.class]++
	st.QueueWait[r.class] += wait
	if wait > st.MaxWait[r.class] {
		st.MaxWait[r.class] = wait
	}
	if r.promoted {
		st.Promotions++
	}
	if r.dlPromoted {
		st.DeadlinePromotions++
	}
	ds.s.dev.NoteQueueWait(int(r.class), wait)
}

// issue submits the command to the device on w. With a ClockWaiter the
// call returns immediately, leaving the completion time in the clock —
// the device commits state and reserves its timelines synchronously.
func (ds *dieSched) issue(w sim.Waiter, r *request) {
	dev := ds.s.dev
	switch r.op {
	case opRead:
		r.oobOut, r.err = dev.ReadPage(w, r.ppn, r.buf)
	case opProgram:
		r.err = dev.ProgramPage(w, r.ppn, r.data, r.oob)
	case opPartial:
		r.err = dev.ProgramPartial(w, r.ppn, r.off, r.data, r.oob)
	case opCopyback:
		r.err = dev.Copyback(w, r.ppn, r.dst, r.oobPtr)
	case opErase:
		r.err = dev.EraseBlock(w, r.pbn)
	}
}

// serve dispatches one non-suspendable command: reserve the device
// timeline now, hold the die until the completion time, then release the
// submitter.
func (ds *dieSched) serve(p *sim.Proc, r *request) {
	start := p.Now()
	ds.account(r, start)
	cw := &sim.ClockWaiter{T: start}
	ds.issue(cw, r)
	p.SleepUntil(cw.T)
	ds.finish(r, start, 0)
}

// serveErase dispatches an erase with suspension: the die runs the erase
// until either it completes or a foreground read arrives; on arrival the
// erase is suspended (tSUS), its executed chunk is charged to the
// device, queued reads are served, and the erase resumes (tRES added to
// the remaining time). The array state commits with the final chunk.
func (ds *dieSched) serveErase(p *sim.Proc, r *request) {
	s := ds.s
	start := p.Now()
	ds.account(r, start)
	ds.inErase = r
	total := s.id.CmdOverhead + s.id.Timing.EraseBlock
	remaining := total
	suspends := 0
	for {
		ds.erasing = suspends < s.cfg.MaxSuspends
		sliceStart := p.Now()
		preempted := false
		if ds.erasing {
			preempted = ds.alarm.Wait(p, remaining)
		} else {
			p.Sleep(remaining)
		}
		ds.erasing = false
		if !preempted {
			r.err = s.dev.EraseChunk(&sim.ClockWaiter{T: p.Now()}, r.pbn, p.Now()-sliceStart, true)
			break
		}
		slice := p.Now() - sliceStart
		suspends++
		s.stats.EraseSuspends++
		s.dev.NoteEraseSuspend()
		p.Sleep(s.id.Timing.EraseSuspend)
		if err := s.dev.EraseChunk(&sim.ClockWaiter{T: p.Now()}, r.pbn, slice+s.id.Timing.EraseSuspend, false); err != nil {
			r.err = err
			break
		}
		remaining -= slice
		if remaining < sim.Microsecond {
			remaining = sim.Microsecond
		}
		for {
			rr := ds.pop(true)
			if rr == nil {
				break
			}
			ds.serve(p, rr)
		}
		remaining += s.id.Timing.EraseResume
	}
	ds.inErase = nil
	ds.finish(r, start, suspends)
}

// finish releases the submitter and emits the trace event.
func (ds *dieSched) finish(r *request, start sim.Time, suspends int) {
	r.done.Fire()
	if tr := ds.s.cfg.Trace; tr != nil {
		block := int64(-1)
		if r.op == opErase {
			block = int64(r.pbn)
		} else if pbn, ok := r.programTarget(ds.s.geo); ok {
			block = int64(pbn)
		}
		tr(Event{
			Die:      ds.die,
			Class:    r.class,
			Tag:      r.tag,
			Op:       opName(r.op),
			Arrival:  r.arrival,
			Start:    start,
			End:      ds.s.k.Now(),
			Suspends: suspends,
			Span:     r.span,
			Block:    block,
		})
	}
}
