// Package system assembles full NoFTL storage stacks: NAND device,
// flash management (host-side volumes and regions, or a conventional
// on-device FTL behind the legacy block interface), an optional native
// command scheduler, and the storage engine formatted on top — one call
// instead of five layers of hand-wiring.
//
// It is the implementation behind the public noftl.NewSystem facade and
// behind the experiment drivers in package bench, so examples, commands
// and benchmarks all build their stacks the same way.
package system

import (
	"fmt"

	"noftl/internal/blockdev"
	"noftl/internal/flash"
	"noftl/internal/ftl"
	"noftl/internal/nand"
	"noftl/internal/noftl"
	"noftl/internal/region"
	"noftl/internal/sched"
	"noftl/internal/serve"
	"noftl/internal/sim"
	"noftl/internal/storage"
	"noftl/internal/telemetry"
	"noftl/internal/telemetry/blame"
	"noftl/internal/telemetry/health"
	"noftl/internal/trace"
)

// Stack names a storage architecture under comparison.
type Stack string

// The storage stacks of Figure 6: the NoFTL architecture versus the
// conventional architecture with an on-device FTL behind a block
// interface.
const (
	StackNoFTL   Stack = "noftl"
	StackFaster  Stack = "faster"
	StackDFTL    Stack = "dftl"
	StackPagemap Stack = "pagemap"
	// StackNoFTLDelta is the NoFTL architecture with the in-place-append
	// flush path on: small buffer-pool flushes go out as page
	// differentials instead of full page programs.
	StackNoFTLDelta Stack = "noftl-delta"
	// StackNoFTLSingle hosts WAL and data on ONE single-policy NoFTL
	// volume (the WAL gets a page window carved from the same page-mapped
	// space): every write stream shares one mapping scheme, one GC and
	// one set of frontiers. The regions ablation's baseline.
	StackNoFTLSingle Stack = "noftl-single"
	// StackNoFTLRegions carves the die array with the region manager:
	// the WAL lives on a native append-only log region (block-granular
	// mapping, truncation-on-checkpoint GC) and the data pages on a
	// page-mapped region — per-region policies plus object placement.
	StackNoFTLRegions Stack = "noftl-regions"
)

// System is an engine mounted on one storage stack.
type System struct {
	Stack    Stack
	Engine   *storage.Engine
	Dev      *flash.Device
	Vol      storage.Volume
	NoFTL    *noftl.Volume    // nil for block-device stacks
	Regions  *region.Manager  // set for the region-managed stack
	Sched    *sched.Scheduler // set when BuildOpts attached a scheduler
	FTLStats func() ftl.Stats
	Ctx      *storage.IOCtx
	K        *sim.Kernel // DES kernel; block-device queueing binds to it
	// Tel is the cross-layer telemetry pipeline (nil unless BuildOpts
	// asked for it): a metrics registry over every layer's counters, a
	// sim-time sampler, and a flight recorder for the slowest spans.
	Tel *telemetry.Telemetry
	// Health is the device-health monitor (nil unless BuildOpts asked
	// for it): per-die wear heatmaps, per-region GC efficiency, the SLO
	// engine and the optional live HTTP monitoring surface.
	Health *health.Monitor
	// CmdLog is the system-owned per-die command timeline feeding blame
	// analysis (nil unless BuildOpts.Blame attached it). A user trace
	// hook installed via Sched.Trace/WithTrace still fires: the builder
	// chains it behind the log's recorder.
	CmdLog *trace.CmdLog
	// Serve is the serving front (nil until StartServe): the tenant
	// catalog, session record API and admission controller over Engine.
	Serve *serve.Front

	// BackgroundGC records that the NoFTL volume was built for
	// worker-driven GC; runners then start maintenance workers instead
	// of piggybacking GC on the db-writers.
	BackgroundGC bool

	// blameCfg remembers the blame configuration for System.Blame.
	blameCfg *blame.Config

	// Log backing chosen by the stack: exactly one of logVol (page
	// volume; nil selects the default zero-latency memory volume) and
	// flashLog (native append-only region) is non-nil after Build.
	logVol   storage.Volume
	flashLog storage.AppendLog
}

// BuildOpts tunes the optional subsystems of a System. The zero value
// reproduces the classic build: no command scheduler, GC at the
// volume's low-water mark (inline plus db-writer-driven).
type BuildOpts struct {
	// Sched attaches a native command scheduler to the device and routes
	// the NoFTL volume's (and log region's) commands through per-class
	// views. Block-device stacks ignore it — an on-device FTL behind the
	// legacy interface is exactly the thing the host cannot schedule.
	Sched *sched.Config
	// BackgroundGC configures NoFTL volumes for worker-driven GC
	// (noftl.Config.BackgroundGC) and makes runners start the background
	// maintenance workers.
	BackgroundGC bool
	// ScanResistant segments the engine's buffer-pool clock so scan
	// traffic cannot evict the OLTP working set (HTAP experiment).
	ScanResistant bool
	// PrefetchWindow sets the engine's Scan read-ahead depth in pages
	// (0: off). Read-ahead also needs prefetcher processes at run time.
	PrefetchWindow int
	// Layout overrides the region-managed stack's default layout
	// (Config.Layout via the facade). Ignored by every other stack.
	Layout *region.Layout
	// Telemetry attaches the cross-layer telemetry pipeline: a metrics
	// registry over every layer's counters, a periodic sim-time sampler,
	// and a flight recorder for request spans (System.Tel).
	Telemetry *telemetry.Config
	// Health attaches the device-health monitor on top of telemetry
	// (System.Health): snapshot probes over every layer, SLO rules
	// evaluated at each sampler tick, and the optional live HTTP
	// surface. Implies a default Telemetry config when none is set.
	Health *health.Config
	// Blame attaches the latency root-cause engine: a system-owned
	// command log on the scheduler's trace hook (System.CmdLog) joined
	// at System.Blame() time with the flight recorder's retained spans.
	// Implies a scheduler (default priority) and telemetry with span
	// retention.
	Blame *blame.Config
}

// Build assembles a full system: NAND device, flash management (host-
// or device-side), volume adapter, formatted engine. The log lives on a
// zero-latency memory volume for every stack except the single-volume
// and region-managed ones, so measured differences come from the data
// path.
func Build(stack Stack, devCfg flash.Config, frames int) (*System, error) {
	return BuildWithOpts(stack, devCfg, frames, BuildOpts{})
}

// BuildWithOpts is Build with scheduler/background-GC options.
func BuildWithOpts(stack Stack, devCfg flash.Config, frames int, opts BuildOpts) (*System, error) {
	devCfg.Nand.StoreData = true
	dev := flash.New(devCfg)
	k := sim.New()
	s := &System{Stack: stack, Dev: dev, Ctx: storage.NewIOCtx(&sim.ClockWaiter{}), K: k,
		BackgroundGC: opts.BackgroundGC}
	pageSize := devCfg.Geometry.PageSize

	if opts.Blame != nil {
		// Blame needs the full command timeline and the spans to join it
		// against: own a CmdLog on the trace hook (chaining any caller
		// hook behind it) and force span retention. The scheduler and
		// telemetry configs are copied before mutation so option values
		// stay caller-owned.
		sc := sched.Config{Policy: sched.Priority}
		if opts.Sched != nil {
			sc = *opts.Sched
		}
		log := &trace.CmdLog{}
		if prev := sc.Trace; prev != nil {
			sc.Trace = func(ev sched.Event) {
				log.Record(ev)
				prev(ev)
			}
		} else {
			sc.Trace = log.Record
		}
		opts.Sched = &sc
		s.CmdLog = log
		s.blameCfg = opts.Blame

		tc := telemetry.Config{}
		if opts.Telemetry != nil {
			tc = *opts.Telemetry
		}
		tc.RetainSpans = true
		opts.Telemetry = &tc
	}

	var devs noftl.ClassDevs
	if opts.Sched != nil {
		s.Sched = sched.New(k, dev, *opts.Sched)
		devs = noftl.ClassDevs{
			Read:     s.Sched.Bind(sched.ClassRead),
			WAL:      s.Sched.Bind(sched.ClassWAL),
			Data:     s.Sched.Bind(sched.ClassProgram),
			Prefetch: s.Sched.Bind(sched.ClassPrefetch),
			GC:       s.Sched.Bind(sched.ClassGC),
		}
	}

	switch stack {
	case StackNoFTL, StackNoFTLDelta:
		v, err := noftl.New(dev, noftl.Config{Devs: devs, BackgroundGC: opts.BackgroundGC})
		if err != nil {
			return nil, err
		}
		s.NoFTL = v
		s.Vol = storage.NewNoFTLVolume(v)
		s.FTLStats = v.Stats
	case StackFaster:
		f, err := ftl.NewFasterFTL(dev, ftl.FasterConfig{SecondChance: true})
		if err != nil {
			return nil, err
		}
		s.Vol = storage.NewBlockVolume(blockdev.New(f, blockdev.Config{Kernel: k}), pageSize)
		s.FTLStats = f.Stats
	case StackDFTL:
		// CMT sized to ~2% of the device's pages: the device-RAM-to-
		// capacity ratio of SATA-era controllers, which is what makes
		// DFTL's translation traffic visible (§3.1).
		cmt := int(devCfg.Geometry.TotalPages() / 50)
		f, err := ftl.NewDFTL(dev, ftl.DFTLConfig{CMTEntries: cmt})
		if err != nil {
			return nil, err
		}
		s.Vol = storage.NewBlockVolume(blockdev.New(f, blockdev.Config{Kernel: k}), pageSize)
		s.FTLStats = f.Stats
	case StackPagemap:
		f, err := ftl.NewPageFTL(dev, ftl.PageFTLConfig{})
		if err != nil {
			return nil, err
		}
		s.Vol = storage.NewBlockVolume(blockdev.New(f, blockdev.Config{Kernel: k}), pageSize)
		s.FTLStats = f.Stats
	case StackNoFTLSingle:
		// Single-policy baseline with the WAL on flash: one volume, one
		// mapping scheme, one write frontier for every stream (hints
		// ignored); the log is just a window of the page space.
		v, err := noftl.New(dev, noftl.Config{DisableHints: true, Devs: devs,
			BackgroundGC: opts.BackgroundGC})
		if err != nil {
			return nil, err
		}
		s.NoFTL = v
		s.FTLStats = v.Stats
		full := storage.NewNoFTLVolume(v)
		logPages := logWindowPages(v.LogicalPages(), devCfg.Geometry.Dies())
		logVol, err := storage.NewSubVolume(full, 0, logPages)
		if err != nil {
			return nil, err
		}
		dataVol, err := storage.NewSubVolume(full, logPages, v.LogicalPages()-logPages)
		if err != nil {
			return nil, err
		}
		s.Vol = dataVol
		s.logVol = logVol
	case StackNoFTLRegions:
		// Region-managed placement: the engine declares WAL → log region
		// and heaps/B+-trees → data region through the catalog.
		lay := region.DefaultDBLayout(regionLogDies(devCfg.Geometry.Dies()))
		if opts.Layout != nil {
			// Deep-copy the caller's layout: the builder mutates region
			// specs (scheduler, BackgroundGC) and must not write through
			// the shared Regions slice into the caller's value.
			lay = *opts.Layout
			lay.Regions = append([]region.Spec(nil), opts.Layout.Regions...)
		}
		lay.Scheduler = s.Sched
		for i := range lay.Regions {
			if lay.Regions[i].Mapping == region.PageMapped {
				lay.Regions[i].BackgroundGC = opts.BackgroundGC
			}
		}
		m, err := region.New(dev, lay)
		if err != nil {
			return nil, err
		}
		dataRegion, walRegion, err := m.Mount()
		if err != nil {
			return nil, err
		}
		s.Regions = m
		s.NoFTL = dataRegion.Vol
		s.FTLStats = m.Stats
		s.Vol = storage.NewNoFTLVolume(dataRegion.Vol)
		s.flashLog = storage.NewFlashLog(walRegion.Log)
	default:
		return nil, fmt.Errorf("system: unknown stack %q", stack)
	}

	engCfg := storage.EngineConfig{
		BufferFrames:   frames,
		DeltaWrites:    stack == StackNoFTLDelta,
		ScanResistant:  opts.ScanResistant,
		PrefetchWindow: opts.PrefetchWindow,
	}
	if s.flashLog != nil {
		if err := storage.FormatFlashLog(s.Ctx, s.Vol, s.flashLog); err != nil {
			return nil, err
		}
		e, err := storage.OpenFlashLog(s.Ctx, s.Vol, s.flashLog, engCfg)
		if err != nil {
			return nil, err
		}
		s.Engine = e
		if err := s.startTelemetry(opts); err != nil {
			return nil, err
		}
		return s, nil
	}
	if s.logVol == nil {
		s.logVol = storage.NewMemVolume(pageSize, 1<<14)
	}
	if err := storage.Format(s.Ctx, s.Vol, s.logVol); err != nil {
		return nil, err
	}
	e, err := storage.Open(s.Ctx, s.Vol, s.logVol, engCfg)
	if err != nil {
		return nil, err
	}
	s.Engine = e
	if err := s.startTelemetry(opts); err != nil {
		return nil, err
	}
	return s, nil
}

// startTelemetry builds the metrics registry over the assembled layers
// and starts the sim-time sampler. Registration order fixes the series'
// column order, so it must stay deterministic: fixed layers first, then
// optional ones gated on what the stack attached. A health config
// implies telemetry (the monitor rides the sampler).
func (s *System) startTelemetry(opts BuildOpts) error {
	cfg := opts.Telemetry
	if cfg == nil {
		if opts.Health == nil {
			return nil
		}
		cfg = &telemetry.Config{}
	}
	t := telemetry.New(*cfg)
	s.Tel = t

	dev := s.Dev
	t.Reg.Counter("flash.reads", func() int64 { return dev.Stats().Reads })
	t.Reg.Counter("flash.programs", func() int64 { return dev.Stats().Programs })
	t.Reg.Counter("flash.erases", func() int64 { return dev.Stats().Erases })
	t.Reg.Counter("flash.program_bytes", func() int64 { return dev.Stats().ProgramBytes })
	t.Reg.Counter("flash.erase_suspends", func() int64 { return dev.Stats().EraseSuspends })

	if fs := s.FTLStats; fs != nil {
		t.Reg.Counter("ftl.host_writes", func() int64 { return fs().HostWrites })
		t.Reg.Counter("ftl.gc_copybacks", func() int64 { return fs().GCCopybacks })
		t.Reg.Gauge("ftl.wa", func() float64 { return fs().WriteAmplification() })
	}
	if v := s.NoFTL; v != nil {
		t.Reg.Counter("noftl.live_pages", v.LivePages)
		t.Reg.Counter("noftl.free_blocks", v.FreeBlocks)
	}
	if sc := s.Sched; sc != nil {
		for c := sched.Class(0); c < sched.NumClasses; c++ {
			c := c
			t.Reg.Gauge("sched.wait."+c.String()+"_us", func() float64 {
				st := sc.Stats()
				return float64(st.MeanWait(c)) / 1e3
			})
			t.Reg.Counter("sched.sched."+c.String(), func() int64 {
				return sc.Stats().Scheduled[c]
			})
		}
		dies := dev.Geometry().Dies()
		t.Reg.Counter("sched.depth", func() int64 {
			var n int64
			for d := 0; d < dies; d++ {
				n += int64(sc.QueueDepth(d))
			}
			return n
		})
		t.Reg.Counter("sched.deadline_promotions", func() int64 {
			return sc.Stats().DeadlinePromotions
		})
	}
	bp := s.Engine.Buffer()
	t.Reg.Counter("buffer.hits", func() int64 { return bp.Stats().Hits })
	t.Reg.Counter("buffer.misses", func() int64 { return bp.Stats().Misses })
	t.Reg.Counter("buffer.evictions", func() int64 { return bp.Stats().Evictions })
	t.Reg.Gauge("buffer.hit_rate", func() float64 {
		st := bp.Stats()
		if st.Hits+st.Misses == 0 {
			return 0
		}
		return float64(st.Hits) / float64(st.Hits+st.Misses)
	})
	if wal := s.Engine.Log(); wal != nil {
		t.Reg.Counter("wal.appends", func() int64 { return wal.Appends })
		t.Reg.Counter("wal.bytes", func() int64 { return wal.BytesLogged })
	}
	t.Reg.Counter("storage.nil_ctx_fallbacks", storage.NilCtxFallbacks)

	// Device-health gauges: cheap scans of the NAND array's wear state
	// plus volume occupancy, registered last so earlier series keep
	// their PR 6 column positions.
	arr := dev.Array()
	t.Reg.Gauge("health.wear_spread", func() float64 {
		ws := arr.Wear()
		return float64(ws.Max - ws.Min)
	})
	t.Reg.Gauge("health.bad_blocks", func() float64 {
		c := arr.Counters()
		return float64(c.FactoryBad + c.GrownBad)
	})
	if v := s.NoFTL; v != nil {
		t.Reg.Gauge("health.occupancy", func() float64 {
			total := v.LogicalPages()
			if total == 0 {
				return 0
			}
			return float64(v.LivePages()) / float64(total)
		})
	}

	if err := s.startHealth(opts.Health); err != nil {
		return err
	}

	t.Start(s.K)
	return nil
}

// startHealth builds the health monitor over the telemetry pipeline:
// layer probes filling the snapshot (device wear/load, per-region GC),
// the SLO engine hooked on the sampler, and the optional live HTTP
// surface.
func (s *System) startHealth(cfg *health.Config) error {
	if cfg == nil {
		return nil
	}
	m := health.New(*cfg, s.Tel)
	s.Health = m

	dev, sc := s.Dev, s.Sched
	geo := dev.Geometry()
	arr := dev.Array()
	m.AddProbe(func(snap *health.Snapshot) {
		snap.Device = health.DeviceInfo{
			Dies:          geo.Dies(),
			PlanesPerDie:  geo.PlanesPerDie,
			BlocksPerDie:  geo.BlocksPerDie(),
			PagesPerBlock: geo.PagesPerBlock,
			PageSize:      geo.PageSize,
		}
		var depths []int
		if sc != nil {
			depths = sc.QueueDepths()
		}
		for die := 0; die < geo.Dies(); die++ {
			d := health.DieHealth{
				Die:       die,
				Blocks:    arr.DieWear(die),
				BadBlocks: arr.DieBadBlocks(die),
				BusyNs:    dev.DieBusy(die),
			}
			if die < len(depths) {
				d.QueueDepth = depths[die]
			}
			minE, maxE := -1, 0
			var sum, n int64
			for _, e := range d.Blocks {
				if e < 0 {
					continue
				}
				if minE < 0 || e < minE {
					minE = e
				}
				if e > maxE {
					maxE = e
				}
				sum += int64(e)
				n++
			}
			if minE < 0 {
				minE = 0
			}
			d.EraseMin, d.EraseMax = minE, maxE
			if n > 0 {
				d.EraseMean = float64(sum) / float64(n)
			}
			snap.Dies = append(snap.Dies, d)
		}
	})
	if rm := s.Regions; rm != nil {
		ppb := geo.PagesPerBlock
		pageSize := geo.PageSize
		m.AddProbe(func(snap *health.Snapshot) {
			for _, rs := range rm.RegionStats() {
				f := rs.FTL
				snap.Regions = append(snap.Regions, health.RegionHealth{
					Name:          rs.Name,
					Mapping:       rs.Mapping.String(),
					Dies:          rs.Dies,
					LivePages:     rs.LivePages,
					CapacityPages: rs.CapacityPages,
					Occupancy:     rs.Occupancy(),
					FreeBlocks:    rs.FreeBlocks,
					EraseMin:      rs.MinErase,
					EraseMax:      rs.MaxErase,
					EraseAvg:      rs.AvgErase,
					GC: health.GCHealth{
						Erases:         f.Erases,
						CopyPages:      f.GCPages(),
						ValidCopyRatio: f.ValidCopyRatio(ppb),
						WA:             f.WriteAmplification(),
						HostBytes:      f.HostWrites * int64(pageSize),
						DeltaBytes:     f.DeltaBytes,
						GCBytes:        f.GCPages() * int64(pageSize),
						WearBytes:      f.WearMoves * int64(pageSize),
						FoldBytes:      f.Folds * int64(pageSize),
					},
				})
			}
		})
	}
	return m.Serve()
}

// regionLogDies sizes the log region: one die, or two on wide arrays.
// logWindowPages derives the single-volume baseline's WAL share from
// the same rule, so the A6 comparison can never measure a log-capacity
// asymmetry by accident.
func regionLogDies(dies int) int {
	if dies >= 16 {
		return 2
	}
	return 1
}

// logWindowPages sizes the single-volume stack's WAL window to the
// same die share the region-managed stack gives its log region, with a
// small floor so checkpoints fit.
func logWindowPages(total int64, dies int) int64 {
	n := total * int64(regionLogDies(dies)) / int64(dies)
	if n < 256 {
		n = 256
	}
	return n
}

// Close checkpoints the engine (flushing dirty pages and anchoring the
// log) and shuts the simulation kernel down. The system is not usable
// afterwards.
func (s *System) Close() error {
	err := s.Engine.Close(s.Ctx)
	s.K.Shutdown()
	if s.Health != nil {
		if cerr := s.Health.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Blame runs the latency root-cause engine over the system-owned
// command log and the flight recorder's retained spans: per-command
// queue waits attributed to the commands that occupied the die ahead,
// aggregated into the victim×culprit interference matrix, per-span
// blame decompositions and flame-graph exports. It returns nil unless
// the system was built with BuildOpts.Blame. Call it after the run (it
// analyzes whatever the log and recorder hold at that point).
func (s *System) Blame() *blame.Report {
	if s.CmdLog == nil || s.blameCfg == nil || s.Tel == nil {
		return nil
	}
	return blame.Analyze(s.CmdLog.Events, s.Tel.Spans(), *s.blameCfg)
}

// Snapshot captures every layer's counters at one instant: the device,
// the flash management (host- or device-side), the scheduler (zero
// value without one), the buffer pool, the WAL and the per-region rows
// (nil without a region manager).
type Snapshot struct {
	Device  flash.Stats
	FTL     ftl.Stats
	Sched   sched.Stats
	Buffer  storage.BufferStats
	Regions []region.RegionStats
	// WALAppends and WALBytes count log records appended and their bytes.
	WALAppends int64
	WALBytes   int64
}

// Snapshot captures the system's cross-layer counters.
func (s *System) Snapshot() Snapshot {
	snap := Snapshot{
		Device: s.Dev.Stats(),
		Buffer: s.Engine.Buffer().Stats(),
	}
	if s.FTLStats != nil {
		snap.FTL = s.FTLStats()
	}
	if s.Sched != nil {
		snap.Sched = s.Sched.Stats()
	}
	if s.Regions != nil {
		snap.Regions = s.Regions.RegionStats()
	}
	if wal := s.Engine.Log(); wal != nil {
		snap.WALAppends = wal.Appends
		snap.WALBytes = wal.BytesLogged
	}
	return snap
}

// StartServe mounts a serving front over the system's engine: the
// tenant catalog, the session record API and the admission controller.
// With telemetry attached it also registers the serve.* metrics and —
// under serve.ControlFull — hooks the burn-rate SLO guard on the
// sampler tick; call it after Build and before the kernel runs (the
// registry seals at the first sample).
func (s *System) StartServe(cfg serve.Config) (*serve.Front, error) {
	f, err := serve.New(s.Engine, cfg)
	if err != nil {
		return nil, err
	}
	if s.Tel != nil {
		f.Attach(s.Tel)
	}
	s.Serve = f
	return f, nil
}

// OpenSession opens a tenant's session on a store of the serving front
// (StartServe first).
func (s *System) OpenSession(tenant, store string) (*serve.Session, error) {
	if s.Serve == nil {
		return nil, fmt.Errorf("system: no serving front (call StartServe)")
	}
	return s.Serve.OpenSession(tenant, store)
}

// StartMaintenance launches the background flash-maintenance workers
// (GC per region plus the wear-leveling sweep) for a background-GC
// system; it returns nil on stacks without a NoFTL volume or built
// without BackgroundGC.
func (s *System) StartMaintenance(cfg sched.MaintConfig) *sched.Maintenance {
	if s.NoFTL == nil || !s.BackgroundGC {
		return nil
	}
	return sched.StartMaintenance(s.K, s.NoFTL, cfg)
}

// Config declares a system for the public facade: a stack, a device
// geometry (either Dies/CapacityMB/Cell or an explicit DeviceConfig)
// and an engine buffer size. Zero values pick the canonical defaults:
// the region-managed NoFTL stack on 8 SLC dies of ~64 MB with 256
// buffer frames.
type Config struct {
	// Stack selects the storage architecture. Default StackNoFTLRegions.
	Stack Stack
	// Dies is the device's die count (ignored with Device set). Default 8.
	Dies int
	// CapacityMB approximates the device capacity (ignored with Device
	// set). Default 64.
	CapacityMB int
	// Cell selects the NAND cell technology (ignored with Device set).
	// Default SLC.
	Cell nand.CellType
	// Device overrides the derived geometry with an explicit config.
	Device *flash.Config
	// Frames is the engine's buffer-pool size in pages. Default 256.
	Frames int
	// Layout overrides the region-managed stack's default layout (one
	// sequential log region plus one page-mapped data region) with a
	// custom one. Only meaningful for StackNoFTLRegions; the catalog
	// must route heaps, indexes and deltas to one page-mapped region.
	Layout *region.Layout
}

// Option tunes the optional subsystems a facade-built system attaches.
type Option func(*BuildOpts)

// WithScheduler attaches a native command scheduler with the given
// configuration. A trace hook already installed by WithTrace survives
// (option order must not matter).
func WithScheduler(cfg sched.Config) Option {
	return func(o *BuildOpts) {
		if o.Sched != nil && cfg.Trace == nil {
			cfg.Trace = o.Sched.Trace
		}
		o.Sched = &cfg
	}
}

// WithPriorityScheduler attaches the priority command scheduler
// (foreground reads > WAL appends > data programs > prefetch > GC, with
// erase suspension).
func WithPriorityScheduler() Option {
	return WithScheduler(sched.Config{Policy: sched.Priority})
}

// WithBackgroundGC builds the NoFTL volumes for worker-driven garbage
// collection (the write path keeps only the emergency free-block floor).
func WithBackgroundGC() Option {
	return func(o *BuildOpts) { o.BackgroundGC = true }
}

// WithScanResistance segments the buffer-pool clock so scan traffic
// cannot evict the OLTP working set.
func WithScanResistance() Option {
	return func(o *BuildOpts) { o.ScanResistant = true }
}

// WithPrefetch enables sequential read-ahead with the given window (in
// pages).
func WithPrefetch(window int) Option {
	return func(o *BuildOpts) { o.PrefetchWindow = window }
}

// WithTelemetry attaches the cross-layer telemetry pipeline: request
// spans (delivered via workload.TerminalConfig.SpanSink), a metrics
// registry over every layer's counters with a periodic sim-time
// sampler, and a flight recorder retaining the slowest spans and all
// deadline misses.
func WithTelemetry(cfg telemetry.Config) Option {
	return func(o *BuildOpts) { o.Telemetry = &cfg }
}

// WithHealth attaches the device-health monitor: per-die wear
// heatmaps and erase histograms, per-region GC efficiency, SLO rules
// evaluated at every sampler tick, and (with Config.MonitorAddr set)
// a live HTTP surface serving /metrics, /health and /alerts. Implies
// default telemetry when no WithTelemetry option is given.
func WithHealth(cfg health.Config) Option {
	return func(o *BuildOpts) { o.Health = &cfg }
}

// WithBlame attaches the latency root-cause engine: the builder owns a
// command log on the scheduler's trace hook and forces telemetry span
// retention, so System.Blame() can join the per-die command timeline
// with the retained request spans after a run. Implies a priority
// scheduler when no scheduler option is given; composes with WithTrace
// (the user hook chains behind the log's recorder) in either order.
func WithBlame(cfg blame.Config) Option {
	return func(o *BuildOpts) { o.Blame = &cfg }
}

// WithTrace registers a command-trace hook (one event per dispatched
// flash command) on the scheduler. It requires a scheduler option; with
// none it attaches a default priority scheduler.
func WithTrace(fn func(sched.Event)) Option {
	return func(o *BuildOpts) {
		if o.Sched == nil {
			o.Sched = &sched.Config{Policy: sched.Priority}
		}
		o.Sched.Trace = fn
	}
}

// New builds a system from a facade config plus options — the public
// noftl.NewSystem entry point.
func New(cfg Config, opts ...Option) (*System, error) {
	var bo BuildOpts
	for _, o := range opts {
		o(&bo)
	}
	bo.Layout = cfg.Layout
	stack := cfg.Stack
	if stack == "" {
		stack = StackNoFTLRegions
	}
	devCfg := flash.Config{}
	if cfg.Device != nil {
		devCfg = *cfg.Device
	} else {
		dies := cfg.Dies
		if dies <= 0 {
			dies = 8
		}
		mb := cfg.CapacityMB
		if mb <= 0 {
			mb = 64
		}
		devCfg = flash.EmulatorConfig(dies, mb, cfg.Cell)
	}
	frames := cfg.Frames
	if frames <= 0 {
		frames = 256
	}
	return BuildWithOpts(stack, devCfg, frames, bo)
}
