package workload

import (
	"fmt"
	"math/rand"

	"noftl/internal/storage"
)

// TPCHConfig scales the TPC-H-like analytical workload: scan-heavy,
// read-only queries over orders/lineitem — the paper's sequential-read
// stressor.
type TPCHConfig struct {
	// ScaleFactor drives the orders population: sf × 1500 orders.
	ScaleFactor int
	// LinesPerOrderMax defaults to 7 (spec average ≈ 4).
	LinesPerOrderMax int
	// Filler pads rows. Default 96.
	Filler int
	// Seed drives the load-time population RNG (lineitem cardinalities),
	// so "deterministic per seed" holds for the analytical workloads the
	// same way it does for TPC-B/TPC-C query streams. 0 selects the
	// historical default of 7.
	Seed int64
}

func (c TPCHConfig) withDefaults() TPCHConfig {
	if c.ScaleFactor <= 0 {
		c.ScaleFactor = 1
	}
	if c.LinesPerOrderMax <= 0 {
		c.LinesPerOrderMax = 7
	}
	if c.Filler <= 0 {
		c.Filler = 96
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// TPCH runs rotating analytical queries: a full-scan aggregation (Q1
// shape), a filtered-scan revenue sum (Q6 shape) and an index-driven
// order/lineitem join (Q3 shape).
type TPCH struct {
	cfg TPCHConfig

	orders, lineitem uint32
	orderPK, linePK  uint32
	nOrders          int64
	next             int
	rows             int64
}

// RowsScanned counts the rows every query callback has visited since
// load — the analytical-throughput numerator HTAP runs report next to
// the OLTP TPS.
func (t *TPCH) RowsScanned() int64 { return t.rows }

// NewTPCH creates the workload.
func NewTPCH(cfg TPCHConfig) *TPCH { return &TPCH{cfg: cfg.withDefaults()} }

// Name implements Workload.
func (t *TPCH) Name() string { return "tpch" }

// Config returns the effective configuration.
func (t *TPCH) Config() TPCHConfig { return t.cfg }

// Load implements Workload.
func (t *TPCH) Load(ctx *storage.IOCtx, e *storage.Engine) error {
	var err error
	mk := func(name string, table bool) uint32 {
		if err != nil {
			return 0
		}
		var id uint32
		if table {
			id, err = e.CreateTable(ctx, name)
		} else {
			id, err = e.CreateIndex(ctx, name)
		}
		return id
	}
	t.orders = mk("tpch_orders", true)
	t.lineitem = mk("tpch_lineitem", true)
	t.orderPK = mk("tpch_orders_pk", false)
	t.linePK = mk("tpch_lineitem_pk", false)
	if err != nil {
		return err
	}
	t.nOrders = int64(t.cfg.ScaleFactor) * 1500
	rng := rand.New(rand.NewSource(t.cfg.Seed))
	// Order row: {oid, custkey, totalprice, orderdate}.
	if err := loadRows(ctx, e, t.orders, t.orderPK, t.nOrders,
		func(i int64) (int64, []byte) {
			return i, rec(t.cfg.Filler, i, i%997, 1000+i%9000, i%2557)
		}); err != nil {
		return fmt.Errorf("tpch: orders: %w", err)
	}
	// Line rows: {lkey, oid, qty, extendedprice, shipdate}.
	var lkeys int64
	for o := int64(0); o < t.nOrders; o += 300 {
		end := o + 300
		if end > t.nOrders {
			end = t.nOrders
		}
		err := withTx(ctx, e, func(tx *storage.Tx) error {
			for oid := o; oid < end; oid++ {
				n := int64(1 + rng.Intn(t.cfg.LinesPerOrderMax))
				for l := int64(0); l < n; l++ {
					lkey := oid*16 + l
					rid, err := e.Insert(ctx, tx, t.lineitem,
						rec(t.cfg.Filler, lkey, oid, 1+lkey%50, 900+lkey%9100, lkey%2557))
					if err != nil {
						return err
					}
					if err := e.IdxInsert(ctx, tx, t.linePK, lkey, rid); err != nil {
						return err
					}
					lkeys++
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("tpch: lineitem: %w", err)
		}
		if err := maybeCheckpointForLog(ctx, e); err != nil {
			return err
		}
	}
	return nil
}

// RunOne implements Workload: one analytical query per call, rotating
// through the three shapes.
func (t *TPCH) RunOne(ctx *storage.IOCtx, e *storage.Engine, rng *rand.Rand) error {
	q := t.next % 3
	t.next++
	switch q {
	case 0:
		return t.q1(ctx, e)
	case 1:
		return t.q6(ctx, e, rng)
	default:
		return t.q3(ctx, e, rng)
	}
}

// q1: full lineitem scan with aggregation.
func (t *TPCH) q1(ctx *storage.IOCtx, e *storage.Engine) error {
	var sumQty, sumPrice, count int64
	err := e.Scan(ctx, t.lineitem, func(rid storage.RID, row []byte) bool {
		sumQty += field(row, 2)
		sumPrice += field(row, 3)
		count++
		t.rows++
		return true
	})
	if err != nil {
		return err
	}
	if count == 0 {
		return fmt.Errorf("tpch: q1 scanned nothing")
	}
	return nil
}

// q6: filtered scan (shipdate window, quantity bound) computing revenue.
func (t *TPCH) q6(ctx *storage.IOCtx, e *storage.Engine, rng *rand.Rand) error {
	lo := int64(rng.Intn(2000))
	hi := lo + 365
	var revenue int64
	return e.Scan(ctx, t.lineitem, func(rid storage.RID, row []byte) bool {
		ship := field(row, 4)
		if ship >= lo && ship < hi && field(row, 2) < 24 {
			revenue += field(row, 3)
		}
		t.rows++
		return true
	})
}

// q3: index-driven join: a band of orders and their lineitems.
func (t *TPCH) q3(ctx *storage.IOCtx, e *storage.Engine, rng *rand.Rand) error {
	start := rng.Int63n(t.nOrders)
	end := start + 200
	if end > t.nOrders {
		end = t.nOrders
	}
	return withTx(ctx, e, func(tx *storage.Tx) error {
		return e.IdxRange(ctx, t.orderPK, start, end-1, func(k int64, rid storage.RID) bool {
			orow, err := e.FetchDirty(ctx, rid)
			if err != nil {
				return false
			}
			oid := field(orow, 0)
			t.rows++
			_ = e.IdxRange(ctx, t.linePK, oid*16, oid*16+15,
				func(lk int64, lrid storage.RID) bool {
					_, _ = e.FetchDirty(ctx, lrid)
					t.rows++
					return true
				})
			return true
		})
	})
}
