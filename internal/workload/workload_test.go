package workload

import (
	"math/rand"
	"testing"

	"noftl/internal/flash"
	"noftl/internal/ftl"
	"noftl/internal/nand"
	"noftl/internal/sim"
	"noftl/internal/storage"
)

func newMemEngine(t *testing.T) (*storage.Engine, *storage.IOCtx) {
	t.Helper()
	data := storage.NewMemVolume(4096, 1<<16)
	logv := storage.NewMemVolume(4096, 1<<14)
	ctx := storage.NewIOCtx(nil)
	if err := storage.Format(ctx, data, logv); err != nil {
		t.Fatal(err)
	}
	e, err := storage.Open(ctx, data, logv, storage.EngineConfig{BufferFrames: 512})
	if err != nil {
		t.Fatal(err)
	}
	return e, ctx
}

// runN executes n transactions, failing the test on any error.
func runN(t *testing.T, wl Workload, e *storage.Engine, ctx *storage.IOCtx, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if err := wl.RunOne(ctx, e, rng); err != nil {
			t.Fatalf("%s tx %d: %v", wl.Name(), i, err)
		}
	}
}

func TestTPCBLoadAndRun(t *testing.T) {
	e, ctx := newMemEngine(t)
	wl := NewTPCB(TPCBConfig{Branches: 2, AccountsPerBranch: 200})
	if err := wl.Load(ctx, e); err != nil {
		t.Fatal(err)
	}
	before := e.Commits
	runN(t, wl, e, ctx, 200, 1)
	if e.Commits-before != 200 {
		t.Errorf("commits = %d, want 200", e.Commits-before)
	}
	// Balance conservation: sum of branch balances equals sum of account
	// plus teller deltas is not directly checkable without replaying, but
	// the history table must hold exactly one row per transaction.
	tbl, err := e.OpenTable("tpcb_history")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := e.Scan(ctx, tbl, func(rid storage.RID, rec []byte) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 200 {
		t.Errorf("history rows = %d, want 200", count)
	}
}

func TestTPCBBalanceConsistency(t *testing.T) {
	// The three balance updates use the same delta: the sum over branch
	// balances must equal the sum over history deltas.
	e, ctx := newMemEngine(t)
	wl := NewTPCB(TPCBConfig{Branches: 2, AccountsPerBranch: 100})
	if err := wl.Load(ctx, e); err != nil {
		t.Fatal(err)
	}
	runN(t, wl, e, ctx, 300, 2)
	var branchSum, histSum int64
	tbl, _ := e.OpenTable("tpcb_branch")
	_ = e.Scan(ctx, tbl, func(rid storage.RID, rec []byte) bool {
		branchSum += field(rec, 1)
		return true
	})
	htbl, _ := e.OpenTable("tpcb_history")
	_ = e.Scan(ctx, htbl, func(rid storage.RID, rec []byte) bool {
		histSum += field(rec, 3)
		return true
	})
	if branchSum != histSum {
		t.Errorf("branch sum %d != history sum %d", branchSum, histSum)
	}
}

func TestTPCCLoadAndRun(t *testing.T) {
	e, ctx := newMemEngine(t)
	wl := NewTPCC(TPCCConfig{Warehouses: 1, CustomersPerDistrict: 30,
		Items: 100, InitialOrdersPerDistrict: 10})
	if err := wl.Load(ctx, e); err != nil {
		t.Fatal(err)
	}
	runN(t, wl, e, ctx, 300, 3)
	if e.Commits == 0 {
		t.Fatal("no commits")
	}
	// District next-order ids only grow; orders must exist for each id
	// below next_o_id.
	dtbl, _ := e.OpenTable("tpcc_district")
	opk, _ := e.OpenTable("tpcc_order_pk")
	bad := 0
	_ = e.Scan(ctx, dtbl, func(rid storage.RID, rec []byte) bool {
		wd := field(rec, 0)
		next := field(rec, 1)
		for oid := int64(0); oid < next; oid++ {
			if _, found, _ := e.IdxLookup(ctx, nil, opk, wd*oidSpan+oid); !found {
				bad++
			}
		}
		return true
	})
	if bad != 0 {
		t.Errorf("%d order ids missing below next_o_id", bad)
	}
}

func TestTPCCMultiWarehouse(t *testing.T) {
	e, ctx := newMemEngine(t)
	wl := NewTPCC(TPCCConfig{Warehouses: 2, CustomersPerDistrict: 20,
		Items: 50, InitialOrdersPerDistrict: 5})
	if err := wl.Load(ctx, e); err != nil {
		t.Fatal(err)
	}
	runN(t, wl, e, ctx, 200, 4)
}

func TestTPCELoadAndRun(t *testing.T) {
	e, ctx := newMemEngine(t)
	wl := NewTPCE(TPCEConfig{Customers: 50, Securities: 40})
	if err := wl.Load(ctx, e); err != nil {
		t.Fatal(err)
	}
	runN(t, wl, e, ctx, 400, 5)
	// TPC-E is read-mostly: beyond the initial trade history, growth
	// must stay a minority of the 400 transactions.
	initial := int(wl.Config().AccountsPerCustomer) * 50 * wl.Config().InitialTradesPerAccount
	ttbl, _ := e.OpenTable("tpce_trade")
	trades := 0
	_ = e.Scan(ctx, ttbl, func(rid storage.RID, rec []byte) bool { trades++; return true })
	grown := trades - initial
	if grown <= 0 {
		t.Errorf("no trades inserted (total %d, initial %d)", trades, initial)
	}
	if grown > 200 {
		t.Errorf("trades grew by %d of 400 txs; mix too write-heavy", grown)
	}
}

func TestTPCHLoadAndQueries(t *testing.T) {
	e, ctx := newMemEngine(t)
	wl := NewTPCH(TPCHConfig{ScaleFactor: 1})
	if err := wl.Load(ctx, e); err != nil {
		t.Fatal(err)
	}
	runN(t, wl, e, ctx, 6, 6) // two rounds of Q1/Q6/Q3
}

func TestWorkloadDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		e, ctx := newMemEngine(t)
		wl := NewTPCB(TPCBConfig{Branches: 1, AccountsPerBranch: 50})
		if err := wl.Load(ctx, e); err != nil {
			t.Fatal(err)
		}
		runN(t, wl, e, ctx, 100, 99)
		var sum int64
		tbl, _ := e.OpenTable("tpcb_account")
		_ = e.Scan(ctx, tbl, func(rid storage.RID, rec []byte) bool {
			sum += field(rec, 1)
			return true
		})
		return sum, e.Commits
	}
	s1, c1 := run()
	s2, c2 := run()
	if s1 != s2 || c1 != c2 {
		t.Errorf("same seed diverged: sums %d/%d commits %d/%d", s1, s2, c1, c2)
	}
}

func TestSyntheticPatterns(t *testing.T) {
	dev := flash.New(flash.Config{
		Geometry: nand.Geometry{Channels: 2, ChipsPerChannel: 1, DiesPerChip: 1,
			PlanesPerDie: 1, BlocksPerPlane: 64, PagesPerBlock: 16, PageSize: 512, OOBSize: 16},
		Cell: nand.SLC,
	})
	f, err := ftl.NewPageFTL(dev, ftl.PageFTLConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pat := range []Pattern{SeqWrite, SeqRead, RandWrite, RandRead, RandMixed70} {
		w := &sim.ClockWaiter{}
		res, err := RunSynthetic(w, f, SynthConfig{Pattern: pat, Ops: 300, PageSize: 512, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", pat, err)
		}
		if res.IOPS() <= 0 {
			t.Errorf("%v: IOPS = %v", pat, res.IOPS())
		}
		if pat.String() == "unknown" {
			t.Errorf("pattern %d has no name", pat)
		}
	}
	// Reads must be faster than writes on SLC.
	w := &sim.ClockWaiter{}
	wres, _ := RunSynthetic(w, f, SynthConfig{Pattern: RandWrite, Ops: 200, PageSize: 512, Seed: 2})
	rres, _ := RunSynthetic(w, f, SynthConfig{Pattern: RandRead, Ops: 200, PageSize: 512, Seed: 3})
	if rres.ReadLat.Mean() >= wres.WriteLat.Mean() {
		t.Errorf("read mean %v >= write mean %v", rres.ReadLat.Mean(), wres.WriteLat.Mean())
	}
}
