package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"noftl/internal/sim"
	"noftl/internal/stats"
	"noftl/internal/storage"
)

// Terminal is one simulated client terminal: a closed-loop sim.Proc
// running transactions back-to-back against the engine, with
// per-transaction commit-latency accounting. N terminals together form
// the concurrent multi-terminal workload the command-scheduling
// experiments need — the regime where foreground transactions, background
// db-writers and flash maintenance all contend for the same dies.
type Terminal struct {
	ID        int
	Committed int64
	Retries   int64           // lock-timeout restarts
	Hist      stats.Histogram // commit latency of counted transactions
}

// TerminalConfig configures StartTerminals.
type TerminalConfig struct {
	// N is the number of terminal processes.
	N int
	// Seed derives each terminal's private RNG (seed + id*7919).
	Seed int64
	// Think is idle time between transactions (0: closed loop).
	Think sim.Time
	// Counting gates Committed and Hist so warm-up transactions are
	// excluded; nil counts from the start.
	Counting *bool
	// OnFatal receives a terminal's fatal error; the terminal then
	// stops. Nil ignores errors.
	OnFatal func(error)
}

// Terminals is the handle over a running terminal set.
type Terminals struct {
	All     []*Terminal
	stopped bool
}

// StartTerminals launches cfg.N terminal processes running wl against e
// on kernel k. Terminals observe Stop at their next transaction
// boundary.
func StartTerminals(k *sim.Kernel, e *storage.Engine, wl Workload, cfg TerminalConfig) *Terminals {
	ts := &Terminals{}
	for i := 0; i < cfg.N; i++ {
		term := &Terminal{ID: i}
		ts.All = append(ts.All, term)
		seed := cfg.Seed + int64(i)*7919
		k.Go(fmt.Sprintf("terminal%d", i), func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(seed))
			ctx := storage.NewIOCtx(sim.ProcWaiter{P: p})
			for !ts.stopped {
				t0 := p.Now()
				err := wl.RunOne(ctx, e, rng)
				switch {
				case err == nil:
					if cfg.Counting == nil || *cfg.Counting {
						term.Committed++
						term.Hist.Add(p.Now() - t0)
					}
				case errors.Is(err, storage.ErrLockTimeout):
					term.Retries++
				default:
					if cfg.OnFatal != nil {
						cfg.OnFatal(err)
					}
					return
				}
				if cfg.Think > 0 {
					p.Sleep(cfg.Think)
				}
			}
		})
	}
	return ts
}

// Stop halts the terminals at their next transaction boundary.
func (ts *Terminals) Stop() { ts.stopped = true }

// Committed sums committed (counted) transactions over all terminals.
func (ts *Terminals) Committed() int64 {
	var n int64
	for _, t := range ts.All {
		n += t.Committed
	}
	return n
}

// Retries sums lock-timeout restarts over all terminals.
func (ts *Terminals) Retries() int64 {
	var n int64
	for _, t := range ts.All {
		n += t.Retries
	}
	return n
}

// CommitHist merges the terminals' commit-latency histograms.
func (ts *Terminals) CommitHist() stats.Histogram {
	var h stats.Histogram
	for _, t := range ts.All {
		h.AddHist(&t.Hist)
	}
	return h
}
