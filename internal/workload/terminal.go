package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"noftl/internal/ioreq"
	"noftl/internal/sim"
	"noftl/internal/stats"
	"noftl/internal/storage"
)

// Terminal is one simulated client terminal: a closed-loop sim.Proc
// running transactions back-to-back against the engine, with
// per-transaction commit-latency accounting. N terminals together form
// the concurrent multi-terminal workload the command-scheduling
// experiments need — the regime where foreground transactions, background
// db-writers and flash maintenance all contend for the same dies.
type Terminal struct {
	ID             int
	Tag            uint32 // stream tag riding on every request (0: untagged)
	Committed      int64
	Retries        int64           // lock-timeout restarts
	DeadlineMisses int64           // counted commits past their deadline
	Hist           stats.Histogram // commit latency of counted transactions
}

// TerminalConfig configures StartTerminals.
type TerminalConfig struct {
	// N is the number of terminal processes.
	N int
	// FirstID offsets terminal IDs: terminals number FirstID..FirstID+N-1.
	// Span IDs derive from the terminal ID, so two terminal groups
	// feeding one span sink (the QoS demo's tenants) must not overlap.
	FirstID int
	// Seed derives each terminal's private RNG (seed + id*7919).
	Seed int64
	// Think is idle time between transactions (0: closed loop).
	Think sim.Time
	// Counting gates Committed and Hist so warm-up transactions are
	// excluded; nil counts from the start.
	Counting *bool
	// OnFatal receives a terminal's fatal error; the terminal then
	// stops. Nil ignores errors.
	OnFatal func(error)
	// ClassOf, when non-nil, assigns terminal id's requests a scheduler
	// class — the per-request QoS tier every command of its transactions
	// dispatches at (ioreq.ClassDefault: the volume's routing decides).
	ClassOf func(id int) ioreq.Class
	// TagOf, when non-nil, assigns terminal id's requests a stream tag,
	// carried down to the command log for per-stream attribution.
	TagOf func(id int) uint32
	// DeadlineAfter, when non-nil and positive for a terminal, stamps
	// each of its transactions with a completion deadline that far into
	// the future; a priority scheduler promotes the transaction's
	// still-queued commands ahead of their class once it passes.
	DeadlineAfter func(id int) sim.Time
	// SpanSink, when non-nil, turns on request spans: every counted
	// transaction runs under a fresh ioreq.Span whose per-layer stage
	// timings are delivered here at commit (typically
	// telemetry.Telemetry.RecordSpan).
	SpanSink func(*ioreq.Span)
	// WorkloadOf, when non-nil, gives terminal id its own workload in
	// place of the shared one (the serving-front driver binds each
	// terminal to its own session this way). Returning nil keeps the
	// shared workload.
	WorkloadOf func(id int) Workload
	// Retry, when non-nil, classifies extra errors as retryable: a
	// transaction failing with one counts a retry (like a lock timeout)
	// instead of killing the terminal. Admission-shed errors are the
	// motivating case — the client backs off and tries again.
	Retry func(error) bool
}

// Terminals is the handle over a running terminal set.
type Terminals struct {
	All     []*Terminal
	stopped bool
}

// StartTerminals launches cfg.N terminal processes running wl against e
// on kernel k. Terminals observe Stop at their next transaction
// boundary.
func StartTerminals(k *sim.Kernel, e *storage.Engine, wl Workload, cfg TerminalConfig) *Terminals {
	ts := &Terminals{}
	for n := 0; n < cfg.N; n++ {
		i := cfg.FirstID + n
		term := &Terminal{ID: i}
		ts.All = append(ts.All, term)
		seed := cfg.Seed + int64(i)*7919
		if cfg.TagOf != nil {
			term.Tag = cfg.TagOf(i)
		}
		twl := wl
		if cfg.WorkloadOf != nil {
			if w := cfg.WorkloadOf(i); w != nil {
				twl = w
			}
		}
		k.Go(fmt.Sprintf("terminal%d", i), func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(seed))
			ctx := storage.NewIOCtx(sim.ProcWaiter{P: p})
			if cfg.ClassOf != nil {
				ctx.Class = cfg.ClassOf(term.ID)
			}
			ctx.Tag = term.Tag
			var dlAfter sim.Time
			if cfg.DeadlineAfter != nil {
				dlAfter = cfg.DeadlineAfter(term.ID)
			}
			var spanSeq uint64
			for !ts.stopped {
				t0 := p.Now()
				if dlAfter > 0 {
					ctx.Deadline = t0 + dlAfter
				}
				ctx.Span = nil
				if cfg.SpanSink != nil {
					spanSeq++
					sp := ioreq.NewSpan(uint64(term.ID)<<32|spanSeq, term.ID, term.Tag)
					sp.Deadline = ctx.Deadline
					sp.Begin(t0)
					ctx.Span = sp
				}
				err := twl.RunOne(ctx, e, rng)
				switch {
				case err == nil:
					if cfg.Counting == nil || *cfg.Counting {
						now := p.Now()
						term.Committed++
						term.Hist.Add(now - t0)
						if ctx.Deadline > 0 && now > ctx.Deadline {
							term.DeadlineMisses++
						}
						if ctx.Span != nil {
							ctx.Span.Finish(now)
							cfg.SpanSink(ctx.Span)
						}
					}
				case errors.Is(err, storage.ErrLockTimeout) ||
					(cfg.Retry != nil && cfg.Retry(err)):
					term.Retries++
				default:
					if cfg.OnFatal != nil {
						cfg.OnFatal(err)
					}
					return
				}
				if cfg.Think > 0 {
					p.Sleep(cfg.Think)
				}
			}
		})
	}
	return ts
}

// Stop halts the terminals at their next transaction boundary.
func (ts *Terminals) Stop() { ts.stopped = true }

// Committed sums committed (counted) transactions over all terminals.
func (ts *Terminals) Committed() int64 {
	var n int64
	for _, t := range ts.All {
		n += t.Committed
	}
	return n
}

// Retries sums lock-timeout restarts over all terminals.
func (ts *Terminals) Retries() int64 {
	var n int64
	for _, t := range ts.All {
		n += t.Retries
	}
	return n
}

// DeadlineMisses sums counted commits that finished past their deadline
// over all terminals.
func (ts *Terminals) DeadlineMisses() int64 {
	var n int64
	for _, t := range ts.All {
		n += t.DeadlineMisses
	}
	return n
}

// TagDeadlineMisses sums deadline misses of the terminals carrying one
// stream tag.
func (ts *Terminals) TagDeadlineMisses(tag uint32) int64 {
	var n int64
	for _, t := range ts.All {
		if t.Tag == tag {
			n += t.DeadlineMisses
		}
	}
	return n
}

// CommitHist merges the terminals' commit-latency histograms.
func (ts *Terminals) CommitHist() stats.Histogram {
	var h stats.Histogram
	for _, t := range ts.All {
		h.AddHist(&t.Hist)
	}
	return h
}

// Tags returns the distinct stream tags of the terminal set, in first-
// terminal order.
func (ts *Terminals) Tags() []uint32 {
	var out []uint32
	seen := map[uint32]bool{}
	for _, t := range ts.All {
		if !seen[t.Tag] {
			seen[t.Tag] = true
			out = append(out, t.Tag)
		}
	}
	return out
}

// TagCommitHist merges the commit-latency histograms of the terminals
// carrying one stream tag.
func (ts *Terminals) TagCommitHist(tag uint32) stats.Histogram {
	var h stats.Histogram
	for _, t := range ts.All {
		if t.Tag == tag {
			h.AddHist(&t.Hist)
		}
	}
	return h
}

// TagCommitted sums committed (counted) transactions of the terminals
// carrying one stream tag.
func (ts *Terminals) TagCommitted(tag uint32) int64 {
	var n int64
	for _, t := range ts.All {
		if t.Tag == tag {
			n += t.Committed
		}
	}
	return n
}
