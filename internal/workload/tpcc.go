package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"

	"noftl/internal/storage"
)

// errRollback is the spec-mandated intentional rollback (1% of NewOrder
// transactions carry an invalid item and must abort).
var errRollback = errors.New("workload: intentional rollback")

// TPCCConfig scales the TPC-C schema. Spec ratios kept: 10 districts per
// warehouse, customer/stock/item populations shrink proportionally.
type TPCCConfig struct {
	// Warehouses is the scale factor (sf).
	Warehouses int
	// CustomersPerDistrict defaults to 120 (spec: 3000).
	CustomersPerDistrict int
	// Items defaults to 1000 (spec: 100,000); stock is per (warehouse,
	// item).
	Items int
	// InitialOrdersPerDistrict defaults to 30 (spec: 3000).
	InitialOrdersPerDistrict int
	// Filler pads rows toward spec widths. Default 80.
	Filler int
}

func (c TPCCConfig) withDefaults() TPCCConfig {
	if c.Warehouses <= 0 {
		c.Warehouses = 1
	}
	if c.CustomersPerDistrict <= 0 {
		c.CustomersPerDistrict = 120
	}
	if c.Items <= 0 {
		c.Items = 1000
	}
	if c.InitialOrdersPerDistrict <= 0 {
		c.InitialOrdersPerDistrict = 30
	}
	if c.Filler <= 0 {
		c.Filler = 80
	}
	return c
}

const (
	districtsPerWH = 10
	maxOrderLines  = 15
	oidSpan        = int64(1 << 24) // order ids per district before key overflow
)

// TPCC is the TPC-C benchmark with the spec transaction mix:
// NewOrder 45%, Payment 43%, OrderStatus 4%, Delivery 4%, StockLevel 4%.
type TPCC struct {
	cfg TPCCConfig

	warehouse, district, customer, history  uint32
	order, newOrder, orderLine, item, stock uint32
	whPK, distPK, custPK, itemPK, stockPK   uint32
	orderPK, noPK, olPK, orderCust          uint32
}

// NewTPCC creates a TPC-C workload.
func NewTPCC(cfg TPCCConfig) *TPCC { return &TPCC{cfg: cfg.withDefaults()} }

// Name implements Workload.
func (t *TPCC) Name() string { return "tpcc" }

// Config returns the effective configuration.
func (t *TPCC) Config() TPCCConfig { return t.cfg }

// Key packing.
func (t *TPCC) wdOf(wid, did int64) int64 { return wid*districtsPerWH + did }
func (t *TPCC) custKey(wd, cid int64) int64 {
	return wd*int64(t.cfg.CustomersPerDistrict) + cid
}
func (t *TPCC) stockKey(wid, iid int64) int64 { return wid*int64(t.cfg.Items) + iid }
func (t *TPCC) orderKey(wd, oid int64) int64  { return wd*oidSpan + oid }
func (t *TPCC) olKey(okey, line int64) int64  { return okey*16 + line }
func (t *TPCC) custOrderKey(ck, oid int64) int64 {
	return ck*oidSpan + oid
}

// Load implements Workload.
func (t *TPCC) Load(ctx *storage.IOCtx, e *storage.Engine) error {
	var err error
	mk := func(name string, table bool) uint32 {
		if err != nil {
			return 0
		}
		var id uint32
		if table {
			id, err = e.CreateTable(ctx, name)
		} else {
			id, err = e.CreateIndex(ctx, name)
		}
		return id
	}
	t.warehouse = mk("tpcc_warehouse", true)
	t.district = mk("tpcc_district", true)
	t.customer = mk("tpcc_customer", true)
	t.history = mk("tpcc_history", true)
	t.order = mk("tpcc_order", true)
	t.newOrder = mk("tpcc_neworder", true)
	t.orderLine = mk("tpcc_orderline", true)
	t.item = mk("tpcc_item", true)
	t.stock = mk("tpcc_stock", true)
	t.whPK = mk("tpcc_wh_pk", false)
	t.distPK = mk("tpcc_dist_pk", false)
	t.custPK = mk("tpcc_cust_pk", false)
	t.itemPK = mk("tpcc_item_pk", false)
	t.stockPK = mk("tpcc_stock_pk", false)
	t.orderPK = mk("tpcc_order_pk", false)
	t.noPK = mk("tpcc_no_pk", false)
	t.olPK = mk("tpcc_ol_pk", false)
	t.orderCust = mk("tpcc_order_cust", false)
	if err != nil {
		return err
	}
	c := t.cfg
	fill := c.Filler
	nWH := int64(c.Warehouses)

	if err := loadRows(ctx, e, t.warehouse, t.whPK, nWH,
		func(i int64) (int64, []byte) { return i, rec(fill, i, 0) }); err != nil {
		return fmt.Errorf("tpcc: warehouses: %w", err)
	}
	// District row: {wd, nextOid, ytd}.
	if err := loadRows(ctx, e, t.district, t.distPK, nWH*districtsPerWH,
		func(i int64) (int64, []byte) {
			return i, rec(fill, i, int64(c.InitialOrdersPerDistrict), 0)
		}); err != nil {
		return fmt.Errorf("tpcc: districts: %w", err)
	}
	// Customer row: {ck, balance, ytd, payments, deliveries}.
	if err := loadRows(ctx, e, t.customer, t.custPK, nWH*districtsPerWH*int64(c.CustomersPerDistrict),
		func(i int64) (int64, []byte) { return i, rec(fill, i, -1000, 0, 0, 0) }); err != nil {
		return fmt.Errorf("tpcc: customers: %w", err)
	}
	// Item row: {iid, price}.
	if err := loadRows(ctx, e, t.item, t.itemPK, int64(c.Items),
		func(i int64) (int64, []byte) { return i, rec(fill/2, i, 100+i%900) }); err != nil {
		return fmt.Errorf("tpcc: items: %w", err)
	}
	// Stock row: {skey, quantity, ytd, orders}.
	if err := loadRows(ctx, e, t.stock, t.stockPK, nWH*int64(c.Items),
		func(i int64) (int64, []byte) { return i, rec(fill/2, i, 50+i%50, 0, 0) }); err != nil {
		return fmt.Errorf("tpcc: stock: %w", err)
	}
	// Initial orders: roughly the spec shape — the most recent 30% per
	// district are undelivered (present in NEW-ORDER).
	rng := rand.New(rand.NewSource(42))
	for wd := int64(0); wd < nWH*districtsPerWH; wd++ {
		wd := wd
		err := withTx(ctx, e, func(tx *storage.Tx) error {
			for oid := int64(0); oid < int64(c.InitialOrdersPerDistrict); oid++ {
				cid := rng.Int63n(int64(c.CustomersPerDistrict))
				if err := t.insertOrder(ctx, e, tx, wd, oid, cid, rng,
					oid >= int64(c.InitialOrdersPerDistrict*7/10)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("tpcc: orders for wd %d: %w", wd, err)
		}
		if err := maybeCheckpointForLog(ctx, e); err != nil {
			return err
		}
	}
	return nil
}

// insertOrder creates an order with lines (and a NEW-ORDER entry when
// undelivered).
func (t *TPCC) insertOrder(ctx *storage.IOCtx, e *storage.Engine, tx *storage.Tx,
	wd, oid, cid int64, rng *rand.Rand, undelivered bool) error {
	okey := t.orderKey(wd, oid)
	nOL := int64(5 + rng.Intn(11))
	carrier := int64(1 + rng.Intn(10))
	if undelivered {
		carrier = 0
	}
	rid, err := e.Insert(ctx, tx, t.order, rec(8, okey, cid, nOL, carrier))
	if err != nil {
		return err
	}
	if err := e.IdxInsert(ctx, tx, t.orderPK, okey, rid); err != nil {
		return err
	}
	ck := t.custKey(wd, cid)
	if err := e.IdxInsert(ctx, tx, t.orderCust, t.custOrderKey(ck, oid), rid); err != nil {
		return err
	}
	if undelivered {
		norid, err := e.Insert(ctx, tx, t.newOrder, rec(0, okey))
		if err != nil {
			return err
		}
		if err := e.IdxInsert(ctx, tx, t.noPK, okey, norid); err != nil {
			return err
		}
	}
	for l := int64(0); l < nOL; l++ {
		iid := rng.Int63n(int64(t.cfg.Items))
		olrid, err := e.Insert(ctx, tx, t.orderLine,
			rec(16, t.olKey(okey, l), iid, int64(1+rng.Intn(10)), 100+iid%900, carrier))
		if err != nil {
			return err
		}
		if err := e.IdxInsert(ctx, tx, t.olPK, t.olKey(okey, l), olrid); err != nil {
			return err
		}
	}
	return nil
}

// RunOne implements Workload with the spec mix.
func (t *TPCC) RunOne(ctx *storage.IOCtx, e *storage.Engine, rng *rand.Rand) error {
	roll := rng.Intn(100)
	var err error
	switch {
	case roll < 45:
		err = t.newOrderTx(ctx, e, rng)
	case roll < 88:
		err = t.paymentTx(ctx, e, rng)
	case roll < 92:
		err = t.orderStatusTx(ctx, e, rng)
	case roll < 96:
		err = t.deliveryTx(ctx, e, rng)
	default:
		err = t.stockLevelTx(ctx, e, rng)
	}
	if errors.Is(err, errRollback) {
		return nil // intentional abort: the transaction still "completed"
	}
	return err
}

func (t *TPCC) pick(rng *rand.Rand) (wid, did, cid int64) {
	return rng.Int63n(int64(t.cfg.Warehouses)),
		rng.Int63n(districtsPerWH),
		rng.Int63n(int64(t.cfg.CustomersPerDistrict))
}

func (t *TPCC) newOrderTx(ctx *storage.IOCtx, e *storage.Engine, rng *rand.Rand) error {
	wid, did, cid := t.pick(rng)
	wd := t.wdOf(wid, did)
	rollback := rng.Intn(100) == 0
	return withTx(ctx, e, func(tx *storage.Tx) error {
		if _, _, err := fetchByKey(ctx, e, tx, t.whPK, wid); err != nil {
			return err
		}
		drid, drow, err := fetchByKeyU(ctx, e, tx, t.distPK, wd)
		if err != nil {
			return err
		}
		oid := field(drow, 1)
		setField(drow, 1, oid+1)
		if err := e.Update(ctx, tx, drid, drow); err != nil {
			return err
		}
		if _, _, err := fetchByKey(ctx, e, tx, t.custPK, t.custKey(wd, cid)); err != nil {
			return err
		}
		okey := t.orderKey(wd, oid)
		nOL := int64(5 + rng.Intn(11))
		orid, err := e.Insert(ctx, tx, t.order, rec(8, okey, cid, nOL, 0))
		if err != nil {
			return err
		}
		if err := e.IdxInsert(ctx, tx, t.orderPK, okey, orid); err != nil {
			return err
		}
		if err := e.IdxInsert(ctx, tx, t.orderCust,
			t.custOrderKey(t.custKey(wd, cid), oid), orid); err != nil {
			return err
		}
		norid, err := e.Insert(ctx, tx, t.newOrder, rec(0, okey))
		if err != nil {
			return err
		}
		if err := e.IdxInsert(ctx, tx, t.noPK, okey, norid); err != nil {
			return err
		}
		for l := int64(0); l < nOL; l++ {
			iid := rng.Int63n(int64(t.cfg.Items))
			// 1% of warehouses are remote for a line (spec 2.4.1.8).
			swid := wid
			if t.cfg.Warehouses > 1 && rng.Intn(100) == 0 {
				swid = (wid + 1 + rng.Int63n(int64(t.cfg.Warehouses-1))) % int64(t.cfg.Warehouses)
			}
			if rollback && l == nOL-1 {
				return errRollback // invalid item aborts the order
			}
			_, irow, err := fetchByKey(ctx, e, tx, t.itemPK, iid)
			if err != nil {
				return err
			}
			srid, srow, err := fetchByKeyU(ctx, e, tx, t.stockPK, t.stockKey(swid, iid))
			if err != nil {
				return err
			}
			qty := int64(1 + rng.Intn(10))
			have := field(srow, 1)
			if have-qty < 10 {
				have += 91
			}
			setField(srow, 1, have-qty)
			setField(srow, 2, field(srow, 2)+qty)
			setField(srow, 3, field(srow, 3)+1)
			if err := e.Update(ctx, tx, srid, srow); err != nil {
				return err
			}
			olrid, err := e.Insert(ctx, tx, t.orderLine,
				rec(16, t.olKey(okey, l), iid, qty, qty*field(irow, 1), 0))
			if err != nil {
				return err
			}
			if err := e.IdxInsert(ctx, tx, t.olPK, t.olKey(okey, l), olrid); err != nil {
				return err
			}
		}
		return nil
	})
}

func (t *TPCC) paymentTx(ctx *storage.IOCtx, e *storage.Engine, rng *rand.Rand) error {
	wid, did, cid := t.pick(rng)
	wd := t.wdOf(wid, did)
	// 15% of payments hit a remote customer (spec 2.5.1.2).
	cwd := wd
	if t.cfg.Warehouses > 1 && rng.Intn(100) < 15 {
		rw := (wid + 1 + rng.Int63n(int64(t.cfg.Warehouses-1))) % int64(t.cfg.Warehouses)
		cwd = t.wdOf(rw, rng.Int63n(districtsPerWH))
	}
	amount := int64(100 + rng.Intn(500000))
	return withTx(ctx, e, func(tx *storage.Tx) error {
		wrid, wrow, err := fetchByKeyU(ctx, e, tx, t.whPK, wid)
		if err != nil {
			return err
		}
		setField(wrow, 1, field(wrow, 1)+amount)
		if err := e.Update(ctx, tx, wrid, wrow); err != nil {
			return err
		}
		drid, drow, err := fetchByKeyU(ctx, e, tx, t.distPK, wd)
		if err != nil {
			return err
		}
		setField(drow, 2, field(drow, 2)+amount)
		if err := e.Update(ctx, tx, drid, drow); err != nil {
			return err
		}
		crid, crow, err := fetchByKeyU(ctx, e, tx, t.custPK, t.custKey(cwd, cid))
		if err != nil {
			return err
		}
		setField(crow, 1, field(crow, 1)-amount)
		setField(crow, 3, field(crow, 3)+1)
		if err := e.Update(ctx, tx, crid, crow); err != nil {
			return err
		}
		_, err = e.Insert(ctx, tx, t.history, rec(24, t.custKey(cwd, cid), wd, amount))
		return err
	})
}

func (t *TPCC) orderStatusTx(ctx *storage.IOCtx, e *storage.Engine, rng *rand.Rand) error {
	wid, did, cid := t.pick(rng)
	ck := t.custKey(t.wdOf(wid, did), cid)
	return withTx(ctx, e, func(tx *storage.Tx) error {
		if _, _, err := fetchByKey(ctx, e, tx, t.custPK, ck); err != nil {
			return err
		}
		// Most recent order of the customer.
		var lastRID storage.RID
		found := false
		if err := e.IdxRange(ctx, t.orderCust, ck*oidSpan, (ck+1)*oidSpan-1,
			func(k int64, rid storage.RID) bool {
				lastRID = rid
				found = true
				return true
			}); err != nil {
			return err
		}
		if !found {
			return nil // customer without orders
		}
		orow, err := e.Fetch(ctx, tx, lastRID)
		if err != nil {
			if errors.Is(err, storage.ErrBadSlot) {
				return nil // the order's creator rolled back after our scan
			}
			return err
		}
		okey := field(orow, 0)
		nOL := field(orow, 2)
		for l := int64(0); l < nOL; l++ {
			if _, _, err := fetchByKey(ctx, e, tx, t.olPK, t.olKey(okey, l)); err != nil {
				if errors.Is(err, storage.ErrNoKey) || errors.Is(err, storage.ErrBadSlot) {
					return nil // ditto: uncommitted order evaporated
				}
				return err
			}
		}
		return nil
	})
}

func (t *TPCC) deliveryTx(ctx *storage.IOCtx, e *storage.Engine, rng *rand.Rand) error {
	wid := rng.Int63n(int64(t.cfg.Warehouses))
	carrier := int64(1 + rng.Intn(10))
	return withTx(ctx, e, func(tx *storage.Tx) error {
		for did := int64(0); did < districtsPerWH; did++ {
			wd := t.wdOf(wid, did)
			// Oldest undelivered order in the district.
			var okey int64
			var norid storage.RID
			found := false
			if err := e.IdxRange(ctx, t.noPK, t.orderKey(wd, 0), t.orderKey(wd+1, 0)-1,
				func(k int64, rid storage.RID) bool {
					okey, norid, found = k, rid, true
					return false // first = oldest
				}); err != nil {
				return err
			}
			if !found {
				continue
			}
			// Claim the order by removing its NEW-ORDER index entry first;
			// a concurrent delivery that raced us sees ErrNoKey and moves
			// on (its stale RID is never touched).
			if err := e.IdxDelete(ctx, tx, t.noPK, okey); err != nil {
				if errors.Is(err, storage.ErrNoKey) {
					continue
				}
				return err
			}
			if err := e.Delete(ctx, tx, t.newOrder, norid); err != nil {
				return err
			}
			orid, orow, err := fetchByKeyU(ctx, e, tx, t.orderPK, okey)
			if err != nil {
				return err
			}
			setField(orow, 3, carrier)
			if err := e.Update(ctx, tx, orid, orow); err != nil {
				return err
			}
			cid := field(orow, 1)
			nOL := field(orow, 2)
			var total int64
			for l := int64(0); l < nOL; l++ {
				olrid, olrow, err := fetchByKeyU(ctx, e, tx, t.olPK, t.olKey(okey, l))
				if err != nil {
					return fmt.Errorf("delivery okey=%d oid=%d wd=%d line=%d of %d cid=%d carrier=%d: %w",
						okey, okey%oidSpan, wd, l, nOL, cid, field(orow, 3), err)
				}
				total += field(olrow, 3)
				setField(olrow, 4, carrier)
				if err := e.Update(ctx, tx, olrid, olrow); err != nil {
					return err
				}
			}
			crid, crow, err := fetchByKeyU(ctx, e, tx, t.custPK, t.custKey(wd, cid))
			if err != nil {
				return err
			}
			setField(crow, 1, field(crow, 1)+total)
			setField(crow, 4, field(crow, 4)+1)
			if err := e.Update(ctx, tx, crid, crow); err != nil {
				return err
			}
		}
		return nil
	})
}

func (t *TPCC) stockLevelTx(ctx *storage.IOCtx, e *storage.Engine, rng *rand.Rand) error {
	wid := rng.Int63n(int64(t.cfg.Warehouses))
	did := rng.Int63n(districtsPerWH)
	wd := t.wdOf(wid, did)
	threshold := int64(10 + rng.Intn(11))
	return withTx(ctx, e, func(tx *storage.Tx) error {
		_, drow, err := fetchByKey(ctx, e, tx, t.distPK, wd)
		if err != nil {
			return err
		}
		nextOid := field(drow, 1)
		lo := nextOid - 20
		if lo < 0 {
			lo = 0
		}
		items := map[int64]struct{}{}
		if err := e.IdxRange(ctx, t.olPK,
			t.olKey(t.orderKey(wd, lo), 0), t.olKey(t.orderKey(wd, nextOid), 0)-1,
			func(k int64, rid storage.RID) bool {
				row, err := e.FetchDirty(ctx, rid)
				if err == nil {
					items[field(row, 1)] = struct{}{}
				}
				return true
			}); err != nil {
			return err
		}
		// Deterministic iteration order (simulation reproducibility).
		iids := make([]int64, 0, len(items))
		for iid := range items {
			iids = append(iids, iid)
		}
		slices.Sort(iids)
		low := 0
		for _, iid := range iids {
			_, srow, err := fetchByKey(ctx, e, tx, t.stockPK, t.stockKey(wid, iid))
			if err != nil {
				return err
			}
			if field(srow, 1) < threshold {
				low++
			}
		}
		return nil
	})
}
