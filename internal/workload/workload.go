// Package workload implements the benchmarks the paper evaluates with:
// TPC-B, TPC-C, TPC-E and TPC-H style workloads against the storage
// engine, plus FIO-style synthetic page workloads for emulator
// validation. Schemas and transaction mixes follow the specs
// structurally; scale factors are configurable so experiments fit in
// simulation (the paper's absolute sizes remain reachable via flags).
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"noftl/internal/storage"
)

// Workload is a transactional benchmark against the storage engine.
type Workload interface {
	// Name identifies the benchmark ("tpcb", "tpcc", ...).
	Name() string
	// Load creates the schema and initial population.
	Load(ctx *storage.IOCtx, e *storage.Engine) error
	// RunOne executes a single transaction (begin..commit/abort). Lock
	// timeouts are returned (already aborted) so drivers can retry.
	RunOne(ctx *storage.IOCtx, e *storage.Engine, rng *rand.Rand) error
}

// rec builds fixed-layout records: int64 fields followed by filler.
func rec(filler int, fields ...int64) []byte {
	b := make([]byte, len(fields)*8+filler)
	for i, f := range fields {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(f))
	}
	return b
}

// field reads the i-th int64 of a record built by rec.
func field(b []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(b[i*8:]))
}

// setField updates the i-th int64 in place.
func setField(b []byte, i int, v int64) {
	binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
}

// withTx wraps body in a transaction: commit on success, abort on error
// (the error is returned so drivers can classify retries). A failing
// abort is fatal — a transaction that cannot roll back would leave
// partial state behind.
func withTx(ctx *storage.IOCtx, e *storage.Engine, body func(tx *storage.Tx) error) error {
	tx := e.Begin()
	if err := body(tx); err != nil {
		if aerr := e.Abort(ctx, tx); aerr != nil {
			return fmt.Errorf("abort failed (%v) after: %w", aerr, err)
		}
		return err
	}
	return e.Commit(ctx, tx)
}

// loadRows inserts n rows produced by gen and indexes them by key,
// committing in batches to bound undo memory.
func loadRows(ctx *storage.IOCtx, e *storage.Engine, tbl, idx uint32, n int64,
	gen func(i int64) (key int64, row []byte)) error {
	const batch = 500
	for start := int64(0); start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		err := withTx(ctx, e, func(tx *storage.Tx) error {
			for i := start; i < end; i++ {
				key, row := gen(i)
				rid, err := e.Insert(ctx, tx, tbl, row)
				if err != nil {
					return err
				}
				if err := e.IdxInsert(ctx, tx, idx, key, rid); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if err := maybeCheckpointForLog(ctx, e); err != nil {
			return err
		}
	}
	return nil
}

// maybeCheckpointForLog reclaims the WAL when it is halfway to
// capacity. Bulk loads outrun any external checkpointer; when the WAL
// is hosted on a finite flash log (window or region) it must be
// reclaimed mid-load or the load wraps into its own records.
func maybeCheckpointForLog(ctx *storage.IOCtx, e *storage.Engine) error {
	if wal := e.Log(); wal.SinceAnchor()*2 > wal.Capacity() {
		return e.Checkpoint(ctx)
	}
	return nil
}

// fetchByKey looks a row up through an index and returns (rid, row)
// at read-committed (the lock is not retained).
func fetchByKey(ctx *storage.IOCtx, e *storage.Engine, tx *storage.Tx, idx uint32, key int64) (storage.RID, []byte, error) {
	rid, found, err := e.IdxLookup(ctx, tx, idx, key)
	if err != nil {
		return storage.RID{}, nil, err
	}
	if !found {
		return storage.RID{}, nil, fmt.Errorf("%w: idx %d key %d", storage.ErrNoKey, idx, key)
	}
	row, err := e.Fetch(ctx, tx, rid)
	return rid, row, err
}

// fetchByKeyU is fetchByKey with FOR UPDATE semantics: the row lock is
// held until commit, so read-modify-write cycles cannot lose updates.
func fetchByKeyU(ctx *storage.IOCtx, e *storage.Engine, tx *storage.Tx, idx uint32, key int64) (storage.RID, []byte, error) {
	rid, found, err := e.IdxLookup(ctx, tx, idx, key)
	if err != nil {
		return storage.RID{}, nil, err
	}
	if !found {
		return storage.RID{}, nil, fmt.Errorf("%w: idx %d key %d (for update)", storage.ErrNoKey, idx, key)
	}
	row, err := e.FetchForUpdate(ctx, tx, rid)
	return rid, row, err
}
