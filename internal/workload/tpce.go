package workload

import (
	"fmt"
	"math/rand"

	"noftl/internal/storage"
)

// TPCEConfig scales the TPC-E-like workload: a brokerage schema with the
// spec's ~77/23 read/write transaction split, which makes it the
// read-mostly counterpart to TPC-B/-C in the paper's Figure 3.
type TPCEConfig struct {
	// Customers is the scale factor (the paper runs 1000 customers).
	Customers int
	// AccountsPerCustomer defaults to 2.
	AccountsPerCustomer int
	// Securities defaults to 100.
	Securities int
	// InitialTradesPerAccount populates the trade history at load time
	// (TPC-E ships with a large initial TRADE table). Default 10.
	InitialTradesPerAccount int
	// Filler pads rows. Default 80.
	Filler int
	// Seed drives the load-time population RNG (initial trade history),
	// keeping the workload deterministic per configured seed instead of
	// per compiled-in constant. 0 selects the historical default of 17.
	Seed int64
}

func (c TPCEConfig) withDefaults() TPCEConfig {
	if c.Customers <= 0 {
		c.Customers = 100
	}
	if c.AccountsPerCustomer <= 0 {
		c.AccountsPerCustomer = 2
	}
	if c.Securities <= 0 {
		c.Securities = 100
	}
	if c.InitialTradesPerAccount <= 0 {
		c.InitialTradesPerAccount = 10
	}
	if c.Filler <= 0 {
		c.Filler = 80
	}
	if c.Seed == 0 {
		c.Seed = 17
	}
	return c
}

// TPCE is a TPC-E-like brokerage workload. Transaction mix (trade-order
// and trade-result are the write path, ~23%):
//
//	TradeOrder 12%, TradeResult 11%, TradeStatus 25%,
//	CustomerPosition 27%, MarketWatch 25%
type TPCE struct {
	cfg TPCEConfig

	customer, account, security, tradeTbl uint32
	custPK, acctPK, secPK, tradePK        uint32
	tradeAcct                             uint32
	nextTrade                             int64
}

// NewTPCE creates the workload.
func NewTPCE(cfg TPCEConfig) *TPCE { return &TPCE{cfg: cfg.withDefaults()} }

// Name implements Workload.
func (t *TPCE) Name() string { return "tpce" }

// Config returns the effective configuration.
func (t *TPCE) Config() TPCEConfig { return t.cfg }

const tradeSpan = int64(1 << 24)

// Load implements Workload.
func (t *TPCE) Load(ctx *storage.IOCtx, e *storage.Engine) error {
	var err error
	mk := func(name string, table bool) uint32 {
		if err != nil {
			return 0
		}
		var id uint32
		if table {
			id, err = e.CreateTable(ctx, name)
		} else {
			id, err = e.CreateIndex(ctx, name)
		}
		return id
	}
	t.customer = mk("tpce_customer", true)
	t.account = mk("tpce_account", true)
	t.security = mk("tpce_security", true)
	t.tradeTbl = mk("tpce_trade", true)
	t.custPK = mk("tpce_cust_pk", false)
	t.acctPK = mk("tpce_acct_pk", false)
	t.secPK = mk("tpce_sec_pk", false)
	t.tradePK = mk("tpce_trade_pk", false)
	t.tradeAcct = mk("tpce_trade_acct", false)
	if err != nil {
		return err
	}
	c := t.cfg
	if err := loadRows(ctx, e, t.customer, t.custPK, int64(c.Customers),
		func(i int64) (int64, []byte) { return i, rec(c.Filler, i, 0) }); err != nil {
		return fmt.Errorf("tpce: customers: %w", err)
	}
	// Account row: {aid, balance, holdings}.
	if err := loadRows(ctx, e, t.account, t.acctPK, int64(c.Customers*c.AccountsPerCustomer),
		func(i int64) (int64, []byte) { return i, rec(c.Filler, i, 1_000_000, 0) }); err != nil {
		return fmt.Errorf("tpce: accounts: %w", err)
	}
	// Security row: {sid, price, volume}.
	if err := loadRows(ctx, e, t.security, t.secPK, int64(c.Securities),
		func(i int64) (int64, []byte) { return i, rec(c.Filler, i, 100+i%400, 0) }); err != nil {
		return fmt.Errorf("tpce: securities: %w", err)
	}
	// Initial trade history: completed trades spread over accounts.
	nTrades := t.accounts() * int64(c.InitialTradesPerAccount)
	rng := rand.New(rand.NewSource(c.Seed))
	for start := int64(0); start < nTrades; start += 500 {
		end := start + 500
		if end > nTrades {
			end = nTrades
		}
		err := withTx(ctx, e, func(tx *storage.Tx) error {
			for tid := start; tid < end; tid++ {
				aid := tid % t.accounts()
				sid := rng.Int63n(int64(c.Securities))
				trid, err := e.Insert(ctx, tx, t.tradeTbl,
					rec(c.Filler, tid, aid, sid, int64(1+rng.Intn(100)), 1))
				if err != nil {
					return err
				}
				if err := e.IdxInsert(ctx, tx, t.tradePK, tid, trid); err != nil {
					return err
				}
				if err := e.IdxInsert(ctx, tx, t.tradeAcct, aid*tradeSpan+tid, trid); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("tpce: trades: %w", err)
		}
		if err := maybeCheckpointForLog(ctx, e); err != nil {
			return err
		}
	}
	t.nextTrade = nTrades
	return nil
}

func (t *TPCE) accounts() int64 {
	return int64(t.cfg.Customers * t.cfg.AccountsPerCustomer)
}

// RunOne implements Workload.
func (t *TPCE) RunOne(ctx *storage.IOCtx, e *storage.Engine, rng *rand.Rand) error {
	roll := rng.Intn(100)
	switch {
	case roll < 12:
		return t.tradeOrder(ctx, e, rng)
	case roll < 23:
		return t.tradeResult(ctx, e, rng)
	case roll < 48:
		return t.tradeStatus(ctx, e, rng)
	case roll < 75:
		return t.customerPosition(ctx, e, rng)
	default:
		return t.marketWatch(ctx, e, rng)
	}
}

// tradeOrder inserts a trade and debits the account (write).
func (t *TPCE) tradeOrder(ctx *storage.IOCtx, e *storage.Engine, rng *rand.Rand) error {
	aid := rng.Int63n(t.accounts())
	sid := rng.Int63n(int64(t.cfg.Securities))
	qty := int64(1 + rng.Intn(100))
	return withTx(ctx, e, func(tx *storage.Tx) error {
		arid, arow, err := fetchByKeyU(ctx, e, tx, t.acctPK, aid)
		if err != nil {
			return err
		}
		_, srow, err := fetchByKey(ctx, e, tx, t.secPK, sid)
		if err != nil {
			return err
		}
		cost := qty * field(srow, 1)
		setField(arow, 1, field(arow, 1)-cost)
		if err := e.Update(ctx, tx, arid, arow); err != nil {
			return err
		}
		tid := t.nextTrade
		t.nextTrade++
		// Trade row: {tid, aid, sid, qty, status(0=pending)}.
		trid, err := e.Insert(ctx, tx, t.tradeTbl, rec(t.cfg.Filler, tid, aid, sid, qty, 0))
		if err != nil {
			return err
		}
		if err := e.IdxInsert(ctx, tx, t.tradePK, tid, trid); err != nil {
			return err
		}
		return e.IdxInsert(ctx, tx, t.tradeAcct, aid*tradeSpan+tid, trid)
	})
}

// tradeResult completes a pending trade and bumps the security volume
// (write).
func (t *TPCE) tradeResult(ctx *storage.IOCtx, e *storage.Engine, rng *rand.Rand) error {
	if t.nextTrade == 0 {
		return t.tradeOrder(ctx, e, rng) // nothing pending yet
	}
	tid := rng.Int63n(t.nextTrade)
	return withTx(ctx, e, func(tx *storage.Tx) error {
		trid, trow, err := fetchByKeyU(ctx, e, tx, t.tradePK, tid)
		if err != nil {
			return err
		}
		setField(trow, 4, 1) // completed
		if err := e.Update(ctx, tx, trid, trow); err != nil {
			return err
		}
		srid, srow, err := fetchByKeyU(ctx, e, tx, t.secPK, field(trow, 2))
		if err != nil {
			return err
		}
		setField(srow, 2, field(srow, 2)+field(trow, 3))
		if err := e.Update(ctx, tx, srid, srow); err != nil {
			return err
		}
		arid, arow, err := fetchByKeyU(ctx, e, tx, t.acctPK, field(trow, 1))
		if err != nil {
			return err
		}
		setField(arow, 2, field(arow, 2)+field(trow, 3))
		return e.Update(ctx, tx, arid, arow)
	})
}

// tradeStatus reads an account's recent trades (read-only).
func (t *TPCE) tradeStatus(ctx *storage.IOCtx, e *storage.Engine, rng *rand.Rand) error {
	aid := rng.Int63n(t.accounts())
	return withTx(ctx, e, func(tx *storage.Tx) error {
		n := 0
		return e.IdxRange(ctx, t.tradeAcct, aid*tradeSpan, (aid+1)*tradeSpan-1,
			func(k int64, rid storage.RID) bool {
				if _, err := e.FetchDirty(ctx, rid); err != nil {
					return false
				}
				n++
				return n < 20
			})
	})
}

// customerPosition reads a customer's accounts and holdings (read-only).
func (t *TPCE) customerPosition(ctx *storage.IOCtx, e *storage.Engine, rng *rand.Rand) error {
	cid := rng.Int63n(int64(t.cfg.Customers))
	return withTx(ctx, e, func(tx *storage.Tx) error {
		if _, _, err := fetchByKey(ctx, e, tx, t.custPK, cid); err != nil {
			return err
		}
		for a := 0; a < t.cfg.AccountsPerCustomer; a++ {
			aid := cid*int64(t.cfg.AccountsPerCustomer) + int64(a)
			if _, _, err := fetchByKey(ctx, e, tx, t.acctPK, aid); err != nil {
				return err
			}
		}
		return nil
	})
}

// marketWatch reads a basket of securities (read-only).
func (t *TPCE) marketWatch(ctx *storage.IOCtx, e *storage.Engine, rng *rand.Rand) error {
	return withTx(ctx, e, func(tx *storage.Tx) error {
		start := rng.Int63n(int64(t.cfg.Securities))
		for i := int64(0); i < 10; i++ {
			sid := (start + i) % int64(t.cfg.Securities)
			if _, _, err := fetchByKey(ctx, e, tx, t.secPK, sid); err != nil {
				return err
			}
		}
		return nil
	})
}
