package workload

import (
	"fmt"
	"math/rand"

	"noftl/internal/storage"
)

// TPCBConfig scales the TPC-B schema. The spec's ratios are 1 branch :
// 10 tellers : 100,000 accounts; AccountsPerBranch shrinks the account
// population for simulation while keeping the access pattern (uniform
// account updates, branch/teller hotspots, append-only history).
type TPCBConfig struct {
	// Branches is the scale factor (sf).
	Branches int
	// TellersPerBranch defaults to 10 (spec).
	TellersPerBranch int
	// AccountsPerBranch defaults to 1000 (spec: 100,000).
	AccountsPerBranch int
	// Filler pads records towards the spec's 100-byte rows. Default 64.
	Filler int
}

func (c TPCBConfig) withDefaults() TPCBConfig {
	if c.Branches <= 0 {
		c.Branches = 1
	}
	if c.TellersPerBranch <= 0 {
		c.TellersPerBranch = 10
	}
	if c.AccountsPerBranch <= 0 {
		c.AccountsPerBranch = 1000
	}
	if c.Filler <= 0 {
		c.Filler = 64
	}
	return c
}

// TPCB is the TPC-B benchmark: the canonical update-heavy OLTP workload
// (3 balance updates + 1 history insert per transaction).
type TPCB struct {
	cfg  TPCBConfig
	name string // table/index prefix and workload name ("tpcb")

	branches, tellers, accounts, history uint32
	branchPK, tellerPK, accountPK        uint32
}

// NewTPCB creates a TPC-B workload.
func NewTPCB(cfg TPCBConfig) *TPCB { return &TPCB{cfg: cfg.withDefaults(), name: "tpcb"} }

// NewTPCBNamed creates a TPC-B workload with its own table-name prefix,
// so several independent instances (multi-tenant experiments) can load
// side by side in one engine.
func NewTPCBNamed(name string, cfg TPCBConfig) *TPCB {
	return &TPCB{cfg: cfg.withDefaults(), name: name}
}

// Name implements Workload.
func (t *TPCB) Name() string { return t.name }

// Config returns the effective configuration.
func (t *TPCB) Config() TPCBConfig { return t.cfg }

// Load implements Workload.
func (t *TPCB) Load(ctx *storage.IOCtx, e *storage.Engine) error {
	var err error
	mk := func(name string) uint32 {
		if err != nil {
			return 0
		}
		var id uint32
		id, err = e.CreateTable(ctx, name)
		return id
	}
	mkIdx := func(name string) uint32 {
		if err != nil {
			return 0
		}
		var id uint32
		id, err = e.CreateIndex(ctx, name)
		return id
	}
	t.branches = mk(t.name + "_branch")
	t.tellers = mk(t.name + "_teller")
	t.accounts = mk(t.name + "_account")
	t.history = mk(t.name + "_history")
	t.branchPK = mkIdx(t.name + "_branch_pk")
	t.tellerPK = mkIdx(t.name + "_teller_pk")
	t.accountPK = mkIdx(t.name + "_account_pk")
	if err != nil {
		return err
	}
	c := t.cfg
	if err := loadRows(ctx, e, t.branches, t.branchPK, int64(c.Branches),
		func(i int64) (int64, []byte) { return i, rec(c.Filler, i, 0) }); err != nil {
		return fmt.Errorf("tpcb: load branches: %w", err)
	}
	if err := loadRows(ctx, e, t.tellers, t.tellerPK, int64(c.Branches*c.TellersPerBranch),
		func(i int64) (int64, []byte) { return i, rec(c.Filler, i, 0) }); err != nil {
		return fmt.Errorf("tpcb: load tellers: %w", err)
	}
	if err := loadRows(ctx, e, t.accounts, t.accountPK, int64(c.Branches*c.AccountsPerBranch),
		func(i int64) (int64, []byte) { return i, rec(c.Filler, i, 0) }); err != nil {
		return fmt.Errorf("tpcb: load accounts: %w", err)
	}
	return nil
}

// RunOne implements Workload: the standard TPC-B transaction profile.
func (t *TPCB) RunOne(ctx *storage.IOCtx, e *storage.Engine, rng *rand.Rand) error {
	c := t.cfg
	bid := rng.Int63n(int64(c.Branches))
	tid := bid*int64(c.TellersPerBranch) + rng.Int63n(int64(c.TellersPerBranch))
	// 85% of accounts belong to the teller's branch, 15% are remote
	// (spec clause 5.3.5); with one branch everything is local.
	var aid int64
	if c.Branches > 1 && rng.Intn(100) < 15 {
		remote := (bid + 1 + rng.Int63n(int64(c.Branches-1))) % int64(c.Branches)
		aid = remote*int64(c.AccountsPerBranch) + rng.Int63n(int64(c.AccountsPerBranch))
	} else {
		aid = bid*int64(c.AccountsPerBranch) + rng.Int63n(int64(c.AccountsPerBranch))
	}
	delta := rng.Int63n(1999999) - 999999

	return withTx(ctx, e, func(tx *storage.Tx) error {
		for _, upd := range []struct {
			idx uint32
			key int64
		}{
			{t.accountPK, aid},
			{t.tellerPK, tid},
			{t.branchPK, bid},
		} {
			rid, row, err := fetchByKeyU(ctx, e, tx, upd.idx, upd.key)
			if err != nil {
				return err
			}
			setField(row, 1, field(row, 1)+delta)
			if err := e.Update(ctx, tx, rid, row); err != nil {
				return err
			}
		}
		_, err := e.Insert(ctx, tx, t.history, rec(22, aid, tid, bid, delta))
		return err
	})
}
