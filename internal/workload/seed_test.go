package workload

import (
	"testing"

	"noftl/internal/storage"
)

// countRows scans a table and returns its row count.
func countRows(t *testing.T, e *storage.Engine, ctx *storage.IOCtx, name string) int64 {
	t.Helper()
	tbl, err := e.OpenTable(name)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := e.Scan(ctx, tbl, func(storage.RID, []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestTPCHSeedThreading is the satellite regression: the analytical
// workloads must honour the configured seed instead of a compiled-in
// constant — identical seeds reproduce the population exactly,
// different seeds change it.
func TestTPCHSeedThreading(t *testing.T) {
	load := func(seed int64) int64 {
		e, ctx := newMemEngine(t)
		wl := NewTPCH(TPCHConfig{ScaleFactor: 1, Seed: seed})
		if err := wl.Load(ctx, e); err != nil {
			t.Fatal(err)
		}
		return countRows(t, e, ctx, "tpch_lineitem")
	}
	a1, a2, b := load(3), load(3), load(4)
	if a1 != a2 {
		t.Fatalf("same seed, different lineitem populations: %d vs %d", a1, a2)
	}
	if a1 == b {
		t.Fatalf("different seeds produced identical lineitem populations (%d rows): seed not threaded", a1)
	}
	// The zero seed keeps the historical default (7), not Go's default
	// source: it must still be deterministic.
	if NewTPCH(TPCHConfig{}).Config().Seed != 7 {
		t.Fatal("unset TPCH seed did not default to 7")
	}
}

// TestTPCESeedThreading: same property for TPC-E's initial trade
// history (row counts are seed-independent there; the row contents are
// not).
func TestTPCESeedThreading(t *testing.T) {
	sumQty := func(seed int64) int64 {
		e, ctx := newMemEngine(t)
		wl := NewTPCE(TPCEConfig{Customers: 20, Seed: seed})
		if err := wl.Load(ctx, e); err != nil {
			t.Fatal(err)
		}
		tbl, err := e.OpenTable("tpce_trade")
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		if err := e.Scan(ctx, tbl, func(_ storage.RID, rec []byte) bool {
			sum += field(rec, 3) // qty
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return sum
	}
	a1, a2, b := sumQty(3), sumQty(3), sumQty(4)
	if a1 != a2 {
		t.Fatalf("same seed, different trade histories: %d vs %d", a1, a2)
	}
	if a1 == b {
		t.Fatalf("different seeds produced identical trade histories (qty sum %d): seed not threaded", a1)
	}
	if NewTPCE(TPCEConfig{}).Config().Seed != 17 {
		t.Fatal("unset TPCE seed did not default to 17")
	}
}
