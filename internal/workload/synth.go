package workload

import (
	"math/rand"

	"noftl/internal/sim"
	"noftl/internal/stats"
)

// PageTarget is the page-level device a synthetic workload drives — any
// trace.Target (FTL, NoFTL volume adapter) qualifies; the local
// interface avoids an import cycle.
type PageTarget interface {
	LogicalPages() int64
	Read(w sim.Waiter, lpn int64, buf []byte) error
	Write(w sim.Waiter, lpn int64, data []byte) error
}

// Pattern is an FIO-style access pattern.
type Pattern int

// Synthetic access patterns.
const (
	SeqRead Pattern = iota
	SeqWrite
	RandRead
	RandWrite
	RandMixed70 // 70% reads / 30% writes
)

// String names the pattern like FIO job types.
func (p Pattern) String() string {
	switch p {
	case SeqRead:
		return "seqread"
	case SeqWrite:
		return "seqwrite"
	case RandRead:
		return "randread"
	case RandWrite:
		return "randwrite"
	case RandMixed70:
		return "randrw70"
	default:
		return "unknown"
	}
}

// SynthConfig describes one synthetic job.
type SynthConfig struct {
	Pattern  Pattern
	Ops      int
	PageSize int
	Seed     int64
	// Span restricts accesses to the first Span pages (0 = everything).
	Span int64
}

// SynthResult collects the job's measurements.
type SynthResult struct {
	Pattern  Pattern
	Ops      int
	Elapsed  sim.Time
	ReadLat  stats.Histogram
	WriteLat stats.Histogram
}

// IOPS returns operations per simulated second.
func (r *SynthResult) IOPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// RunSynthetic drives the target with the configured pattern, measuring
// per-op latency on the caller's timeline.
func RunSynthetic(w sim.Waiter, target PageTarget, cfg SynthConfig) (*SynthResult, error) {
	n := target.LogicalPages()
	if cfg.Span > 0 && cfg.Span < n {
		n = cfg.Span
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	buf := make([]byte, cfg.PageSize)
	res := &SynthResult{Pattern: cfg.Pattern, Ops: cfg.Ops}
	start := w.Now()
	seq := int64(0)
	for i := 0; i < cfg.Ops; i++ {
		var lpn int64
		var write bool
		switch cfg.Pattern {
		case SeqRead:
			lpn, write = seq, false
		case SeqWrite:
			lpn, write = seq, true
		case RandRead:
			lpn, write = rng.Int63n(n), false
		case RandWrite:
			lpn, write = rng.Int63n(n), true
		case RandMixed70:
			lpn = rng.Int63n(n)
			write = rng.Intn(100) >= 70
		}
		seq = (seq + 1) % n
		t0 := w.Now()
		var err error
		if write {
			err = target.Write(w, lpn, buf)
		} else {
			err = target.Read(w, lpn, buf)
		}
		if err != nil {
			return nil, err
		}
		if write {
			res.WriteLat.Add(w.Now() - t0)
		} else {
			res.ReadLat.Add(w.Now() - t0)
		}
	}
	res.Elapsed = w.Now() - start
	return res, nil
}
