package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"noftl/internal/sim"
	"noftl/internal/stats"
	"noftl/internal/storage"
)

// Reader is one analytical client: a closed-loop sim.Proc running
// read-only queries back-to-back against the engine, with per-query
// latency accounting. M readers next to N OLTP terminals form the HTAP
// regime — the paper's motivating scenario where a sequential scan
// stream and a random OLTP stream collide on the same dies and the
// DBMS, owning the IO policy, decides who wins.
type Reader struct {
	ID      int
	Queries int64
	Retries int64           // lock-timeout restarts
	Hist    stats.Histogram // latency of counted queries
}

// ReaderConfig configures StartReaders.
type ReaderConfig struct {
	// N is the number of analytical reader processes.
	N int
	// Seed derives each reader's private RNG (seed + (id+1)*104729);
	// the offset stride keeps every reader's source distinct from every
	// OLTP terminal's (seed + id*7919) under a shared base seed.
	Seed int64
	// Think is idle time between queries (0: closed loop).
	Think sim.Time
	// Counting gates Queries and Hist so warm-up queries are excluded;
	// nil counts from the start.
	Counting *bool
	// OnFatal receives a reader's fatal error; the reader then stops.
	// Nil ignores errors.
	OnFatal func(error)
}

// Readers is the handle over a running analytical reader set.
type Readers struct {
	All     []*Reader
	stopped bool
}

// StartReaders launches cfg.N analytical reader processes running wl
// against e on kernel k. Readers observe Stop at their next query
// boundary.
func StartReaders(k *sim.Kernel, e *storage.Engine, wl Workload, cfg ReaderConfig) *Readers {
	rs := &Readers{}
	for i := 0; i < cfg.N; i++ {
		reader := &Reader{ID: i}
		rs.All = append(rs.All, reader)
		seed := cfg.Seed + int64(i+1)*104729
		k.Go(fmt.Sprintf("reader%d", i), func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(seed))
			ctx := storage.NewIOCtx(sim.ProcWaiter{P: p})
			for !rs.stopped {
				t0 := p.Now()
				err := wl.RunOne(ctx, e, rng)
				switch {
				case err == nil:
					if cfg.Counting == nil || *cfg.Counting {
						reader.Queries++
						reader.Hist.Add(p.Now() - t0)
					}
				case errors.Is(err, storage.ErrLockTimeout):
					reader.Retries++
				default:
					if cfg.OnFatal != nil {
						cfg.OnFatal(err)
					}
					return
				}
				if cfg.Think > 0 {
					p.Sleep(cfg.Think)
				}
			}
		})
	}
	return rs
}

// Stop halts the readers at their next query boundary.
func (rs *Readers) Stop() { rs.stopped = true }

// Queries sums counted queries over all readers.
func (rs *Readers) Queries() int64 {
	var n int64
	for _, r := range rs.All {
		n += r.Queries
	}
	return n
}

// QueryHist merges the readers' query-latency histograms.
func (rs *Readers) QueryHist() stats.Histogram {
	var h stats.Histogram
	for _, r := range rs.All {
		h.AddHist(&r.Hist)
	}
	return h
}
