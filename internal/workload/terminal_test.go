package workload

import (
	"testing"

	"noftl/internal/sim"
	"noftl/internal/storage"
)

func terminalTestEngine(t *testing.T) (*storage.Engine, *storage.IOCtx) {
	t.Helper()
	ctx := storage.NewIOCtx(&sim.ClockWaiter{})
	data := storage.NewMemVolume(4096, 1<<13)
	log := storage.NewMemVolume(4096, 1<<12)
	if err := storage.Format(ctx, data, log); err != nil {
		t.Fatal(err)
	}
	e, err := storage.Open(ctx, data, log, storage.EngineConfig{BufferFrames: 128})
	if err != nil {
		t.Fatal(err)
	}
	return e, ctx
}

// TestTerminalsRunConcurrently checks the multi-terminal layer: N
// closed-loop terminals commit transactions, the counting gate excludes
// warm-up, and the merged histogram matches the committed count.
func TestTerminalsRunConcurrently(t *testing.T) {
	e, ctx := terminalTestEngine(t)
	wl := NewTPCB(TPCBConfig{Branches: 4, AccountsPerBranch: 200})
	if err := wl.Load(ctx, e); err != nil {
		t.Fatal(err)
	}
	k := sim.New()
	counting := false
	var fatal error
	// Think time bounds the transaction rate: the memory volumes are
	// zero-latency, so a pure closed loop would outrun any checkpoint
	// cadence in simulated time.
	ts := StartTerminals(k, e, wl, TerminalConfig{
		N:        4,
		Seed:     42,
		Think:    200 * sim.Microsecond,
		Counting: &counting,
		OnFatal:  func(err error) { fatal = err },
	})
	stopped := false
	k.Go("checkpointer", func(p *sim.Proc) {
		cctx := storage.NewIOCtx(sim.ProcWaiter{P: p})
		for !stopped {
			p.Sleep(5 * sim.Millisecond)
			if stopped {
				return
			}
			if err := e.Checkpoint(cctx); err != nil && fatal == nil {
				fatal = err
				return
			}
		}
	})
	k.RunFor(50 * sim.Millisecond) // warm-up: not counted
	warm := ts.Committed()
	counting = true
	k.RunFor(200 * sim.Millisecond)
	counting = false
	ts.Stop()
	stopped = true
	k.RunFor(5 * sim.Millisecond)
	k.Shutdown()

	if fatal != nil {
		t.Fatal(fatal)
	}
	if warm != 0 {
		t.Fatalf("warm-up transactions counted: %d", warm)
	}
	n := ts.Committed()
	if n == 0 {
		t.Fatal("no transactions committed")
	}
	h := ts.CommitHist()
	if h.Count() != n {
		t.Fatalf("histogram count %d != committed %d", h.Count(), n)
	}
	perTerm := int64(0)
	for _, term := range ts.All {
		perTerm += term.Committed
	}
	if perTerm != n {
		t.Fatalf("per-terminal sum %d != total %d", perTerm, n)
	}
}

// TestTerminalsThinkTime checks that think time throttles the loop.
func TestTerminalsThinkTime(t *testing.T) {
	e, ctx := terminalTestEngine(t)
	wl := NewTPCB(TPCBConfig{Branches: 2, AccountsPerBranch: 100})
	if err := wl.Load(ctx, e); err != nil {
		t.Fatal(err)
	}
	k := sim.New()
	ts := StartTerminals(k, e, wl, TerminalConfig{N: 1, Seed: 1, Think: 10 * sim.Millisecond})
	k.RunFor(100 * sim.Millisecond)
	ts.Stop()
	k.RunFor(15 * sim.Millisecond)
	k.Shutdown()
	if n := ts.Committed(); n == 0 || n > 12 {
		t.Fatalf("committed = %d, want ~10 with 10ms think time", n)
	}
}
