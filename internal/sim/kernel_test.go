package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{Microsecond, "1.000µs"},
		{1500 * Nanosecond, "1.500µs"},
		{Millisecond, "1.000ms"},
		{2500 * Microsecond, "2.500ms"},
		{Second, "1.000s"},
		{-Millisecond, "-1.000ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeSeconds(t *testing.T) {
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds() = %v, want 2.5", got)
	}
}

func TestEventOrdering(t *testing.T) {
	k := New()
	var order []int
	k.After(20, func() { order = append(order, 2) })
	k.After(10, func() { order = append(order, 1) })
	k.After(20, func() { order = append(order, 3) }) // same time: insertion order
	k.After(30, func() { order = append(order, 4) })
	k.Run()
	want := []int{1, 2, 3, 4}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("event order = %v, want %v", order, want)
	}
	if k.Now() != 30 {
		t.Errorf("Now() = %v, want 30", k.Now())
	}
}

func TestNegativeDelayFiresNow(t *testing.T) {
	k := New()
	fired := false
	k.After(-5, func() { fired = true })
	k.Run()
	if !fired || k.Now() != 0 {
		t.Errorf("negative delay: fired=%v now=%v, want true 0", fired, k.Now())
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	k := New()
	hits := 0
	k.After(10, func() { hits++ })
	k.After(100, func() { hits++ })
	k.RunUntil(50)
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
	if k.Now() != 50 {
		t.Fatalf("Now() = %v, want 50", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", k.Pending())
	}
	k.RunFor(50)
	if hits != 2 || k.Now() != 100 {
		t.Fatalf("after RunFor: hits=%d now=%v, want 2 100", hits, k.Now())
	}
}

func TestProcSleep(t *testing.T) {
	k := New()
	var wakes []Time
	k.Go("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * Microsecond)
			wakes = append(wakes, p.Now())
		}
	})
	k.Run()
	want := []Time{10 * Microsecond, 20 * Microsecond, 30 * Microsecond}
	if !reflect.DeepEqual(wakes, want) {
		t.Errorf("wakes = %v, want %v", wakes, want)
	}
	if k.Alive() != 0 {
		t.Errorf("Alive() = %d, want 0", k.Alive())
	}
}

func TestProcSleepUntil(t *testing.T) {
	k := New()
	var at Time
	k.Go("p", func(p *Proc) {
		p.SleepUntil(5 * Millisecond)
		p.SleepUntil(Millisecond) // in the past: must not rewind
		at = p.Now()
	})
	k.Run()
	if at != 5*Millisecond {
		t.Errorf("woke at %v, want 5ms", at)
	}
}

func TestProcAtomicityBetweenBlockingCalls(t *testing.T) {
	// Two processes increment a shared counter in read-modify-write steps
	// with no blocking in between; interleaving must not lose updates.
	k := New()
	counter := 0
	for i := 0; i < 2; i++ {
		k.Go("inc", func(p *Proc) {
			for j := 0; j < 1000; j++ {
				v := counter
				counter = v + 1
				p.Yield()
			}
		})
	}
	k.Run()
	if counter != 2000 {
		t.Errorf("counter = %d, want 2000 (lost updates)", counter)
	}
}

func TestGoFromProcess(t *testing.T) {
	k := New()
	var childRan bool
	k.Go("parent", func(p *Proc) {
		p.Sleep(10)
		p.Kernel().Go("child", func(c *Proc) {
			c.Sleep(5)
			childRan = true
		})
		p.Sleep(10)
	})
	k.Run()
	if !childRan {
		t.Error("child process never ran")
	}
}

func TestResourceFCFS(t *testing.T) {
	k := New()
	r := NewResource(k, 1)
	var order []string
	worker := func(name string, startDelay, hold Time) {
		k.Go(name, func(p *Proc) {
			p.Sleep(startDelay)
			r.Acquire(p)
			order = append(order, name)
			p.Sleep(hold)
			r.Release()
		})
	}
	worker("a", 0, 100)
	worker("b", 10, 100) // arrives second, must go second even though...
	worker("c", 5, 1)    // ...c arrives before b? c at t=5, b at t=10
	k.Run()
	want := []string{"a", "c", "b"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("grant order = %v, want %v", order, want)
	}
}

func TestResourceCapacity(t *testing.T) {
	k := New()
	r := NewResource(k, 2)
	var maxInUse int
	for i := 0; i < 6; i++ {
		k.Go("w", func(p *Proc) {
			r.Acquire(p)
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			p.Sleep(10)
			r.Release()
		})
	}
	k.Run()
	if maxInUse != 2 {
		t.Errorf("max in use = %d, want 2", maxInUse)
	}
	if k.Now() != 30 { // 6 jobs, 2 at a time, 10 each
		t.Errorf("makespan = %v, want 30", k.Now())
	}
}

func TestResourceUse(t *testing.T) {
	k := New()
	r := NewResource(k, 1)
	var done []Time
	for i := 0; i < 3; i++ {
		k.Go("u", func(p *Proc) {
			r.Use(p, 7)
			done = append(done, p.Now())
		})
	}
	k.Run()
	want := []Time{7, 14, 21}
	if !reflect.DeepEqual(done, want) {
		t.Errorf("completions = %v, want %v", done, want)
	}
}

func TestResourceReleasePanicsWithoutAcquire(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	k := New()
	NewResource(k, 1).Release()
}

func TestResourceBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewResource(New(), 0)
}

func TestQueueProducerConsumer(t *testing.T) {
	k := New()
	q := NewQueue[int](k)
	var got []int
	k.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	k.Go("producer", func(p *Proc) {
		for i := 1; i <= 5; i++ {
			p.Sleep(10)
			q.Put(i)
		}
		q.Close()
	})
	k.Run()
	if !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5}) {
		t.Errorf("got %v, want 1..5", got)
	}
	if k.Alive() != 0 {
		t.Errorf("Alive() = %d after close, want 0", k.Alive())
	}
}

func TestQueueMultipleConsumersDrainBacklog(t *testing.T) {
	k := New()
	q := NewQueue[int](k)
	for i := 0; i < 10; i++ {
		q.Put(i)
	}
	var got []int
	for c := 0; c < 3; c++ {
		k.Go("c", func(p *Proc) {
			for {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
	}
	k.Go("closer", func(p *Proc) {
		p.Sleep(100)
		q.Close()
	})
	k.Run()
	if len(got) != 10 {
		t.Errorf("consumed %d items, want 10: %v", len(got), got)
	}
}

func TestQueueTryGet(t *testing.T) {
	k := New()
	q := NewQueue[string](k)
	if _, ok := q.TryGet(); ok {
		t.Error("TryGet on empty queue returned ok")
	}
	q.Put("x")
	v, ok := q.TryGet()
	if !ok || v != "x" {
		t.Errorf("TryGet = %q,%v want x,true", v, ok)
	}
}

func TestQueuePutAfterClosePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	k := New()
	q := NewQueue[int](k)
	q.Close()
	q.Put(1)
}

func TestShutdownUnwindsParkedProcesses(t *testing.T) {
	k := New()
	q := NewQueue[int](k)
	cleaned := 0
	for i := 0; i < 4; i++ {
		k.Go("blocked", func(p *Proc) {
			defer func() { cleaned++ }()
			q.Get(p) // blocks forever
		})
	}
	k.Go("sleeper", func(p *Proc) {
		defer func() { cleaned++ }()
		p.Sleep(Second) // parked with a pending wake event
	})
	k.RunUntil(10)
	k.Shutdown()
	if cleaned != 5 {
		t.Errorf("cleaned = %d, want 5", cleaned)
	}
	if k.Alive() != 0 {
		t.Errorf("Alive() = %d, want 0", k.Alive())
	}
	// Kernel stays usable.
	ran := false
	k.After(1, func() { ran = true })
	k.Run()
	if !ran {
		t.Error("kernel unusable after Shutdown")
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected process panic to surface in Run")
		}
	}()
	k := New()
	k.Go("boom", func(p *Proc) {
		p.Sleep(5)
		panic("boom")
	})
	k.Run()
}

// TestDeterminism runs a randomized workload twice with the same seed and
// requires identical completion traces.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		k := New()
		rng := rand.New(rand.NewSource(seed))
		r := NewResource(k, 3)
		var completions []Time
		for i := 0; i < 50; i++ {
			delay := Time(rng.Intn(1000))
			hold := Time(rng.Intn(200) + 1)
			k.Go("w", func(p *Proc) {
				p.Sleep(delay)
				r.Use(p, hold)
				completions = append(completions, p.Now())
			})
		}
		k.Run()
		return completions
	}
	a := run(42)
	b := run(42)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different schedules")
	}
}

// Property: simulated time never decreases across an arbitrary sequence
// of sleeps.
func TestTimeMonotoneProperty(t *testing.T) {
	f := func(delays []int16) bool {
		k := New()
		ok := true
		k.Go("p", func(p *Proc) {
			prev := p.Now()
			for _, d := range delays {
				p.Sleep(Time(d)) // negatives clamp to 0
				if p.Now() < prev {
					ok = false
				}
				prev = p.Now()
			}
		})
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClockWaiter(t *testing.T) {
	w := &ClockWaiter{}
	w.WaitUntil(100)
	if w.Now() != 100 {
		t.Errorf("Now() = %v, want 100", w.Now())
	}
	w.WaitUntil(50) // past: no rewind
	if w.Now() != 100 {
		t.Errorf("Now() = %v after past wait, want 100", w.Now())
	}
}

func TestProcWaiter(t *testing.T) {
	k := New()
	var end Time
	k.Go("p", func(p *Proc) {
		w := ProcWaiter{P: p}
		w.WaitUntil(30 * Microsecond)
		end = w.Now()
	})
	k.Run()
	if end != 30*Microsecond {
		t.Errorf("end = %v, want 30µs", end)
	}
}

func TestRealWaiterScale(t *testing.T) {
	w := NewRealWaiter(1000) // 1000x faster than real time
	w.WaitUntil(10 * Millisecond)
	if got := w.Now(); got < 10*Millisecond {
		t.Errorf("Now() = %v, want >= 10ms simulated", got)
	}
}
