package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback. Events with equal time fire in insertion
// order (seq), which makes the simulation deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a deterministic discrete-event scheduler. The zero value is
// not usable; create kernels with New.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	yielded chan struct{} // signalled by a process when it hands control back
	parked  map[*Proc]struct{}
	alive   int
	panicv  any
	trapped bool
}

// New returns an empty kernel at time zero.
func New() *Kernel {
	return &Kernel{
		yielded: make(chan struct{}),
		parked:  make(map[*Proc]struct{}),
	}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Alive reports the number of processes that have started and not yet
// terminated.
func (k *Kernel) Alive() int { return k.alive }

// Pending reports the number of scheduled, not yet fired events.
func (k *Kernel) Pending() int { return len(k.events) }

// After schedules fn to run d after the current time. It may be called
// from process context or from outside Run. Negative delays fire
// immediately (at the current time).
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	k.at(k.now+d, fn)
}

func (k *Kernel) at(t Time, fn func()) {
	k.seq++
	heap.Push(&k.events, &event{at: t, seq: k.seq, fn: fn})
}

// Run executes events until the queue drains. Processes blocked on a
// queue or resource with no future wake-up are left parked; call
// Shutdown to unwind them.
func (k *Kernel) Run() {
	for len(k.events) > 0 {
		k.step()
	}
}

// RunUntil executes all events scheduled at or before t, then advances
// the clock to t.
func (k *Kernel) RunUntil(t Time) {
	for len(k.events) > 0 && k.events[0].at <= t {
		k.step()
	}
	if k.now < t {
		k.now = t
	}
}

// RunFor executes events for the next d of simulated time.
func (k *Kernel) RunFor(d Time) { k.RunUntil(k.now + d) }

func (k *Kernel) step() {
	e := heap.Pop(&k.events).(*event)
	if e.at > k.now {
		k.now = e.at
	}
	e.fn()
	if k.trapped {
		v := k.panicv
		k.trapped = false
		k.panicv = nil
		panic(fmt.Sprintf("sim: process panic: %v", v))
	}
}

// Shutdown unwinds every parked process (their deferred functions run)
// and clears the event queue. The kernel remains usable afterwards.
func (k *Kernel) Shutdown() {
	// Killing a process runs its defers, which may park other processes
	// or schedule events, so iterate until quiescent.
	for len(k.parked) > 0 {
		var p *Proc
		for q := range k.parked {
			if p == nil || q.id < p.id {
				p = q
			}
		}
		p.killed = true
		k.resume(p)
	}
	k.events = nil
}

// resume transfers control to p and blocks until p parks or terminates.
func (k *Kernel) resume(p *Proc) {
	if p.terminated {
		return
	}
	delete(k.parked, p)
	p.wake <- struct{}{}
	<-k.yielded
}
