package sim

// Resource is a counted FCFS resource (a semaphore with strict arrival
// ordering). Release hands the slot directly to the longest-waiting
// process, so later arrivals cannot barge past parked ones.
type Resource struct {
	k        *Kernel
	capacity int
	inUse    int
	waiters  []*resWaiter
}

type resWaiter struct {
	p       *Proc
	granted bool
}

// NewResource returns a resource with the given concurrent capacity.
// Capacity must be >= 1.
func NewResource(k *Kernel, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{k: k, capacity: capacity}
}

// InUse reports how many slots are currently held.
func (r *Resource) InUse() int { return r.inUse }

// Waiting reports how many processes are queued for a slot.
func (r *Resource) Waiting() int { return len(r.waiters) }

// Acquire blocks p until a slot is available. Slots are granted in strict
// arrival order.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		return
	}
	w := &resWaiter{p: p}
	r.waiters = append(r.waiters, w)
	for !w.granted {
		p.park()
	}
}

// Release frees one slot. If processes are waiting the slot transfers to
// the head of the queue without becoming observable as free.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without matching Acquire")
	}
	if len(r.waiters) == 0 {
		r.inUse--
		return
	}
	w := r.waiters[0]
	r.waiters = r.waiters[1:]
	w.granted = true
	w.p.wakeLater()
}

// Use acquires the resource, holds it for d of simulated time, and
// releases it. It models a FCFS server with deterministic service time.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}
