// Package sim provides a deterministic discrete-event simulation (DES)
// kernel: a virtual clock, cooperatively scheduled processes, FCFS
// resources and mailbox queues.
//
// The kernel executes exactly one process at a time and orders events by
// (time, insertion sequence), so a simulation with fixed seeds is fully
// deterministic. This is the offline twin of the paper's real-time flash
// emulator: the same device model can run either under the kernel
// (virtual time, used by all experiments) or against the wall clock
// (sim.RealWaiter, used by live demos).
package sim

import "fmt"

// Time is a point in simulated time, in nanoseconds since simulation start.
type Time int64

// Duration constants in simulated time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time with an adaptive unit, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	}
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }
