package sim

import "testing"

func TestAlarmDeadline(t *testing.T) {
	k := New()
	a := NewAlarm(k)
	var woke Time
	var preempted bool
	k.Go("waiter", func(p *Proc) {
		preempted = a.Wait(p, 5*Millisecond)
		woke = p.Now()
	})
	k.Run()
	if preempted {
		t.Fatal("uninterrupted wait reported preemption")
	}
	if woke != 5*Millisecond {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
}

func TestAlarmInterrupt(t *testing.T) {
	k := New()
	a := NewAlarm(k)
	var woke Time
	var preempted bool
	k.Go("waiter", func(p *Proc) {
		preempted = a.Wait(p, 5*Millisecond)
		woke = p.Now()
	})
	k.Go("poker", func(p *Proc) {
		p.Sleep(1 * Millisecond)
		a.Interrupt()
	})
	k.Run()
	if !preempted {
		t.Fatal("interrupted wait not reported as preempted")
	}
	if woke != 1*Millisecond {
		t.Fatalf("woke at %v, want 1ms", woke)
	}
}

func TestAlarmStaleDeadlineIgnored(t *testing.T) {
	k := New()
	a := NewAlarm(k)
	wakes := 0
	k.Go("waiter", func(p *Proc) {
		a.Wait(p, 5*Millisecond) // interrupted at 1ms
		wakes++
		a.Wait(p, 10*Millisecond) // the stale 5ms deadline must not fire this
		wakes++
		if p.Now() != 11*Millisecond {
			t.Errorf("second wait ended at %v, want 11ms", p.Now())
		}
	})
	k.Go("poker", func(p *Proc) {
		p.Sleep(1 * Millisecond)
		a.Interrupt()
	})
	k.Run()
	if wakes != 2 {
		t.Fatalf("wakes = %d, want 2", wakes)
	}
}

func TestAlarmIndefiniteWait(t *testing.T) {
	k := New()
	a := NewAlarm(k)
	done := false
	k.Go("waiter", func(p *Proc) {
		if !a.Wait(p, -1) {
			t.Error("indefinite wait must report preemption")
		}
		done = true
	})
	k.Go("poker", func(p *Proc) {
		p.Sleep(3 * Millisecond)
		a.Interrupt()
	})
	k.Run()
	if !done {
		t.Fatal("waiter never woke")
	}
}

func TestAlarmInterruptWithoutWaiterIsNoop(t *testing.T) {
	k := New()
	a := NewAlarm(k)
	a.Interrupt() // nothing parked: must not panic or remember
	ran := false
	k.Go("waiter", func(p *Proc) {
		if a.Wait(p, 2*Millisecond) {
			t.Error("wait preempted by a stale interrupt")
		}
		ran = true
	})
	k.Run()
	if !ran {
		t.Fatal("waiter never ran")
	}
}

func TestSignalFireWakesAllWaiters(t *testing.T) {
	k := New()
	var s Signal
	woke := 0
	for i := 0; i < 3; i++ {
		k.Go("waiter", func(p *Proc) {
			s.Wait(p)
			woke++
			if p.Now() != 2*Millisecond {
				t.Errorf("woke at %v, want 2ms", p.Now())
			}
		})
	}
	k.Go("firer", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		s.Fire()
	})
	k.Run()
	if woke != 3 {
		t.Fatalf("woke = %d, want 3", woke)
	}
}

func TestSignalFireBeforeWait(t *testing.T) {
	k := New()
	var s Signal
	s.Fire()
	ran := false
	k.Go("waiter", func(p *Proc) {
		s.Wait(p) // returns immediately
		ran = true
	})
	k.Run()
	if !ran {
		t.Fatal("waiter blocked on an already-fired signal")
	}
}
