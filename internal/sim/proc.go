package sim

import (
	"fmt"
	"runtime/debug"
)

// procKilled is the sentinel panic value used by Shutdown to unwind a
// parked process.
type procKilledError struct{}

func (procKilledError) Error() string { return "sim: process killed by Shutdown" }

var errKilled = procKilledError{}

// Proc is a simulated process: a goroutine scheduled cooperatively by the
// kernel. Only one process executes at any instant, so code between two
// blocking calls (Sleep, Queue.Get, Resource.Acquire) is atomic with
// respect to other processes.
type Proc struct {
	k          *Kernel
	id         uint64
	name       string
	wake       chan struct{}
	killed     bool
	terminated bool
}

// Go starts a new process running fn. The process begins executing at the
// current simulated time, after already-scheduled events for that time.
// It may be called from process context or from outside Run.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	k.seq++
	p := &Proc{k: k, id: k.seq, name: name, wake: make(chan struct{})}
	k.alive++
	go func() {
		defer func() {
			p.terminated = true
			k.alive--
			if r := recover(); r != nil {
				if _, ok := r.(procKilledError); !ok {
					// Preserve the process's stack; the kernel re-panics
					// on its own goroutine, which would otherwise lose it.
					k.panicv = fmt.Sprintf("%v\nprocess %q stack:\n%s", r, p.name, debug.Stack())
					k.trapped = true
				}
			}
			k.yielded <- struct{}{}
		}()
		<-p.wake
		if p.killed {
			panic(errKilled)
		}
		fn(p)
	}()
	k.at(k.now, func() { k.resume(p) })
	return p
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// Sleep suspends the process for d of simulated time. d <= 0 yields the
// processor: the process resumes at the same instant after other events
// already scheduled for it.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.k.at(p.k.now+d, func() { p.k.resume(p) })
	p.park()
}

// SleepUntil suspends the process until simulated time t (no-op if t is
// in the past).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.k.now {
		p.Sleep(0)
		return
	}
	p.Sleep(t - p.k.now)
}

// Yield lets every other event scheduled for the current instant run.
func (p *Proc) Yield() { p.Sleep(0) }

// park hands control back to the kernel without scheduling a wake-up.
// Something else (an event, Queue.Put, Resource.Release, Shutdown) must
// later call k.resume(p).
func (p *Proc) park() {
	p.k.parked[p] = struct{}{}
	p.k.yielded <- struct{}{}
	<-p.wake
	if p.killed {
		panic(errKilled)
	}
}

// wakeLater schedules p to resume at the current instant (FIFO after
// already-pending events).
func (p *Proc) wakeLater() {
	p.k.at(p.k.now, func() { p.k.resume(p) })
}
