package sim

// Alarm parks one process until a deadline that other events may
// preempt. It is the primitive behind interruptible service: a command
// scheduler's die dispatcher sleeps on an Alarm while an erase runs, and
// an arriving high-priority command calls Interrupt to suspend the erase
// mid-flight.
//
// At most one process may Wait on an Alarm at a time.
type Alarm struct {
	k       *Kernel
	p       *Proc
	waiting bool
	preempt bool
	gen     uint64
}

// NewAlarm returns an Alarm bound to kernel k.
func NewAlarm(k *Kernel) *Alarm { return &Alarm{k: k} }

// Wait parks the calling process until d elapses or Interrupt fires,
// whichever comes first; d < 0 waits for Interrupt alone. It reports
// whether the wait was interrupted before the deadline.
func (a *Alarm) Wait(p *Proc, d Time) bool {
	if a.waiting {
		panic("sim: Alarm.Wait while another wait is active")
	}
	a.gen++
	gen := a.gen
	a.p = p
	a.waiting = true
	a.preempt = false
	if d >= 0 {
		a.k.at(a.k.now+d, func() {
			// A stale deadline (the wait was interrupted, or a newer wait
			// started) must not wake anyone.
			if a.gen != gen || !a.waiting {
				return
			}
			a.waiting = false
			p.wakeLater()
		})
	}
	p.park()
	a.p = nil
	return a.preempt
}

// Interrupt preempts an active Wait; without one it is a no-op (the
// event that would have interrupted is simply not needed).
func (a *Alarm) Interrupt() {
	if !a.waiting {
		return
	}
	a.waiting = false
	a.preempt = true
	a.p.wakeLater()
}

// Waiting reports whether a process is currently parked on the alarm.
func (a *Alarm) Waiting() bool { return a.waiting }

// Signal is a one-shot completion event between processes: Wait parks
// callers until Fire, which wakes them all. Firing before anyone waits
// is remembered — later Waits return immediately. The zero value is
// ready to use.
type Signal struct {
	fired   bool
	waiters []*Proc
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire marks the signal done and wakes every waiter. Firing twice is a
// no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, p := range s.waiters {
		p.wakeLater()
	}
	s.waiters = nil
}

// Wait parks p until the signal fires (immediately if it already has).
func (s *Signal) Wait(p *Proc) {
	for !s.fired {
		s.waiters = append(s.waiters, p)
		p.park()
	}
}
