package sim

// Queue is an unbounded FIFO mailbox between simulated processes.
// Put never blocks; Get parks the caller while the queue is empty.
// Blocked consumers are served in arrival order.
type Queue[T any] struct {
	k       *Kernel
	items   []T
	waiters []*Proc
	closed  bool
}

// NewQueue returns an empty queue bound to kernel k.
func NewQueue[T any](k *Kernel) *Queue[T] {
	return &Queue[T]{k: k}
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v and wakes the longest-waiting consumer, if any.
// Put on a closed queue panics.
func (q *Queue[T]) Put(v T) {
	if q.closed {
		panic("sim: Put on closed Queue")
	}
	q.items = append(q.items, v)
	q.wakeOne()
}

// Close marks the queue closed. Blocked and future Get calls return
// ok=false once the queue drains. Items already queued are still
// delivered.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, p := range q.waiters {
		p.wakeLater()
	}
	q.waiters = nil
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Get removes and returns the head item, parking p while the queue is
// empty. It returns ok=false if the queue is closed and drained.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			return v, false
		}
		q.waiters = append(q.waiters, p)
		p.park()
	}
	v = q.items[0]
	q.items = q.items[1:]
	// An item may have arrived for another parked consumer while this one
	// was scheduled; keep the chain going if items remain.
	if len(q.items) > 0 {
		q.wakeOne()
	}
	return v, true
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

func (q *Queue[T]) wakeOne() {
	if len(q.waiters) == 0 {
		return
	}
	p := q.waiters[0]
	q.waiters = q.waiters[1:]
	p.wakeLater()
}
