package sim

import (
	"sync"
	"time"
)

// Waiter is how a simulated device makes a caller experience latency,
// independent of execution mode. Device code computes an operation's
// completion time from its resource timelines and calls WaitUntil; the
// Waiter decides what "waiting" means:
//
//   - ProcWaiter: suspend a DES process (virtual time, deterministic).
//   - ClockWaiter: advance a private serial clock (counting-only replays).
//   - RealWaiter: sleep on the wall clock (live demos, the paper's
//     real-time emulator mode).
type Waiter interface {
	// Now returns the caller's current time on the simulated timeline.
	Now() Time
	// WaitUntil blocks the caller until time t. t earlier than Now is a
	// no-op.
	WaitUntil(t Time)
}

// ProcWaiter adapts a DES process to the Waiter interface.
type ProcWaiter struct{ P *Proc }

// Now returns the kernel's current simulated time.
func (w ProcWaiter) Now() Time { return w.P.Now() }

// WaitUntil suspends the process until simulated time t.
func (w ProcWaiter) WaitUntil(t Time) { w.P.SleepUntil(t) }

// ClockWaiter is a serial virtual clock: each WaitUntil simply advances
// the clock. It models a single synchronous client and costs nothing,
// which makes it the right Waiter for offline trace replays where only
// operation counts and aggregate busy time matter.
type ClockWaiter struct{ T Time }

// Now returns the clock's current value.
func (w *ClockWaiter) Now() Time { return w.T }

// WaitUntil advances the clock to t if t is later.
func (w *ClockWaiter) WaitUntil(t Time) {
	if t > w.T {
		w.T = t
	}
}

// RealWaiter maps the simulated timeline onto the wall clock, optionally
// scaled (Scale 2 runs twice as fast as real time; 0 means 1).
// It is safe for concurrent use by multiple goroutines.
type RealWaiter struct {
	start time.Time
	scale float64
	once  sync.Once
}

// NewRealWaiter returns a wall-clock Waiter. scale > 1 compresses time
// (the simulation runs faster than real time); scale <= 0 means 1.
func NewRealWaiter(scale float64) *RealWaiter {
	if scale <= 0 {
		scale = 1
	}
	return &RealWaiter{scale: scale}
}

//noftl:ignore determinism RealWaiter is the sanctioned wall-clock bridge: it exists to pace a sim against real time
func (w *RealWaiter) init() { w.once.Do(func() { w.start = time.Now() }) }

// Now returns the elapsed wall-clock time since first use, scaled.
func (w *RealWaiter) Now() Time {
	w.init()
	//noftl:ignore determinism RealWaiter maps the simulated timeline onto the wall clock by design
	return Time(float64(time.Since(w.start)) * w.scale)
}

// WaitUntil sleeps until the scaled wall clock reaches t.
func (w *RealWaiter) WaitUntil(t Time) {
	w.init()
	for {
		now := w.Now()
		if now >= t {
			return
		}
		time.Sleep(time.Duration(float64(t-now) / w.scale))
	}
}
