// Package blockdev wraps an on-device FTL behind the legacy block-device
// interface: READ(lba)/WRITE(lba) only. This is the "conventional
// storage" path of the paper (Figure 1.a/1.b): the DBMS cannot see the
// flash geometry, cannot steer placement, and — crucially — has no way to
// tell the device that a page's contents are dead, so the FTL's garbage
// collector must treat stale database pages as live data.
//
// The wrapper also models the legacy I/O stack costs NoFTL removes: a
// fixed per-command protocol overhead and a bounded command queue
// (SATA2-class NCQ, 32 outstanding commands).
package blockdev

import (
	"fmt"

	"noftl/internal/ftl"
	"noftl/internal/sim"
)

// Config tunes the legacy interface model.
type Config struct {
	// CmdOverhead is the per-command protocol/driver cost added on top of
	// device latency. Default 10µs (SATA/AHCI class).
	CmdOverhead sim.Time
	// QueueDepth bounds outstanding commands. Default 32 (SATA2 NCQ).
	// Only enforced for DES callers (sim.ProcWaiter); serial callers
	// cannot exceed depth 1 anyway.
	QueueDepth int
	// Kernel enables queue-depth arbitration for DES runs.
	Kernel *sim.Kernel
}

func (c Config) withDefaults() Config {
	if c.CmdOverhead == 0 {
		c.CmdOverhead = 10 * sim.Microsecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	return c
}

// Device is a logical block device backed by an FTL.
type Device struct {
	ftl   ftl.FTL
	cfg   Config
	queue *sim.Resource
}

// New wraps f behind the legacy interface.
func New(f ftl.FTL, cfg Config) *Device {
	cfg = cfg.withDefaults()
	d := &Device{ftl: f, cfg: cfg}
	if cfg.Kernel != nil {
		d.queue = sim.NewResource(cfg.Kernel, cfg.QueueDepth)
	}
	return d
}

// Pages returns the number of addressable logical pages.
func (d *Device) Pages() int64 { return d.ftl.LogicalPages() }

// Name identifies the wrapped FTL, e.g. "blockdev(faster)".
func (d *Device) Name() string { return fmt.Sprintf("blockdev(%s)", d.ftl.Name()) }

// FTLStats exposes the wrapped FTL's counters (a real black-box SSD would
// not; experiments need them).
func (d *Device) FTLStats() ftl.Stats { return d.ftl.Stats() }

// Read reads logical page lba.
func (d *Device) Read(w sim.Waiter, lba int64, buf []byte) error {
	release := d.enter(w)
	defer release()
	w.WaitUntil(w.Now() + d.cfg.CmdOverhead)
	return d.ftl.Read(w, lba, buf)
}

// Write writes logical page lba. There is no way to express "this page
// is dead" through this interface; that asymmetry versus noftl.Volume is
// the architectural difference under test.
func (d *Device) Write(w sim.Waiter, lba int64, data []byte) error {
	release := d.enter(w)
	defer release()
	w.WaitUntil(w.Now() + d.cfg.CmdOverhead)
	return d.ftl.Write(w, lba, data)
}

// enter acquires a queue slot for DES callers and returns the release
// function.
func (d *Device) enter(w sim.Waiter) func() {
	if d.queue == nil {
		return func() {}
	}
	pw, ok := w.(sim.ProcWaiter)
	if !ok {
		return func() {}
	}
	d.queue.Acquire(pw.P)
	return d.queue.Release
}
