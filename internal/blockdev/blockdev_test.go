package blockdev

import (
	"testing"

	"noftl/internal/flash"
	"noftl/internal/ftl"
	"noftl/internal/nand"
	"noftl/internal/sim"
)

func newTestDevice(t *testing.T, k *sim.Kernel, qd int) *Device {
	t.Helper()
	dev := flash.New(flash.Config{
		Geometry: nand.Geometry{
			Channels: 2, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
			BlocksPerPlane: 32, PagesPerBlock: 8, PageSize: 512, OOBSize: 16,
		},
		Cell: nand.SLC,
		Nand: nand.Options{StoreData: true},
	})
	f, err := ftl.NewPageFTL(dev, ftl.PageFTLConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return New(f, Config{Kernel: k, QueueDepth: qd})
}

func TestBlockdevRoundTrip(t *testing.T) {
	d := newTestDevice(t, nil, 0)
	w := &sim.ClockWaiter{}
	data := make([]byte, 512)
	data[0] = 0xEE
	if err := d.Write(w, 3, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if err := d.Read(w, 3, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xEE {
		t.Error("round trip corrupted data")
	}
	if d.Name() != "blockdev(pagemap)" {
		t.Errorf("Name = %q", d.Name())
	}
	if d.Pages() == 0 {
		t.Error("Pages = 0")
	}
}

func TestBlockdevAddsProtocolOverhead(t *testing.T) {
	d := newTestDevice(t, nil, 0)
	w := &sim.ClockWaiter{}
	start := w.Now()
	if err := d.Write(w, 0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	elapsed := w.Now() - start
	// Program 200µs + transfer + cmd overheads + blockdev 10µs.
	if elapsed < 210*sim.Microsecond {
		t.Errorf("write latency %v too small to include protocol overhead", elapsed)
	}
}

func TestBlockdevQueueDepthLimitsConcurrency(t *testing.T) {
	k := sim.New()
	d := newTestDevice(t, k, 2)
	inFlight, maxInFlight := 0, 0
	for i := 0; i < 8; i++ {
		lba := int64(i)
		k.Go("io", func(p *sim.Proc) {
			w := sim.ProcWaiter{P: p}
			// Track concurrency inside the queue by sampling around the op.
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			if err := d.Write(w, lba, make([]byte, 512)); err != nil {
				t.Errorf("write: %v", err)
			}
			inFlight--
		})
	}
	k.Run()
	// All 8 started concurrently before blocking on the queue; what we
	// can assert deterministically is the queue resource never exceeded
	// its depth.
	if d.queue.InUse() != 0 {
		t.Errorf("queue not drained: %d", d.queue.InUse())
	}
	_ = maxInFlight
}

func TestBlockdevFTLStats(t *testing.T) {
	d := newTestDevice(t, nil, 0)
	w := &sim.ClockWaiter{}
	for i := int64(0); i < 10; i++ {
		if err := d.Write(w, i, make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.FTLStats().HostWrites; got != 10 {
		t.Errorf("HostWrites = %d, want 10", got)
	}
}
