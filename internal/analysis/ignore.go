package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments.
//
// A finding that is deliberate — the wall-clock bridge in sim, a test
// that exists to exercise the nil-context fallback — is silenced in
// place with
//
//	//noftl:ignore <analyzer> <reason>
//
// either trailing on the flagged line or standalone on the line above
// it. The reason is mandatory: an ignore that doesn't say why is itself
// a diagnostic (analyzer name "ignore"), as is an ignore naming an
// analyzer that doesn't exist — a typo there would silently suppress
// nothing.

const ignoreDirective = "noftl:ignore"

// ignoreAnalyzer is the pseudo-analyzer name under which the driver
// reports malformed suppression comments.
const ignoreAnalyzer = "ignore"

// ignoreSet records well-formed suppressions by file, line and
// analyzer name.
type ignoreSet map[ignoreKey]bool

type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// scanIgnores collects the package's suppression comments. Malformed
// directives are returned as diagnostics; known names the set of valid
// analyzer names.
func scanIgnores(fset *token.FileSet, files []*ast.File, known map[string]bool) (ignoreSet, []Diagnostic) {
	ig := ignoreSet{}
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+ignoreDirective)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				bad := func(msg string) {
					diags = append(diags, Diagnostic{Pos: pos, Analyzer: ignoreAnalyzer, Message: msg})
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					bad("//" + ignoreDirective + " needs an analyzer name and a reason")
					continue
				}
				name := fields[0]
				if !known[name] {
					bad("//" + ignoreDirective + " names unknown analyzer " + name)
					continue
				}
				if len(fields) < 2 {
					bad("//" + ignoreDirective + " " + name + " needs a reason")
					continue
				}
				ig[ignoreKey{file: pos.Filename, line: pos.Line, analyzer: name}] = true
			}
		}
	}
	return ig, diags
}

// suppresses reports whether the set silences d: a matching directive
// on the diagnostic's line (trailing comment) or the line above it
// (standalone comment).
func (ig ignoreSet) suppresses(d Diagnostic) bool {
	return ig[ignoreKey{file: d.Pos.Filename, line: d.Pos.Line, analyzer: d.Analyzer}] ||
		ig[ignoreKey{file: d.Pos.Filename, line: d.Pos.Line - 1, analyzer: d.Analyzer}]
}
