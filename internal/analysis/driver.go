package analysis

// The driver: load packages, run every analyzer over every unit, apply
// suppression comments, and return deterministically ordered findings.

// Run loads patterns (relative to base) with the loader and applies the
// analyzer suite to every unit. Diagnostics come back sorted by file,
// line, analyzer and message; suppressed findings are dropped, and
// malformed //noftl:ignore comments are reported under the "ignore"
// pseudo-analyzer.
func Run(l *Loader, base string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := l.Load(base, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, Check(l, pkg, analyzers)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// Check runs the analyzers over one loaded unit, applying that unit's
// suppression comments.
func Check(l *Loader, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	ig, diags := scanIgnores(l.Fset, pkg.Files, known)
	var found []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     l.Fset,
			Path:     pkg.Path,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			diags:    &found,
		}
		a.Run(pass)
	}
	for _, d := range found {
		if !ig.suppresses(d) {
			diags = append(diags, d)
		}
	}
	return diags
}
