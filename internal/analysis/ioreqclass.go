package analysis

import (
	"go/ast"
	"strings"
)

// IOReqClass enforces the PR-5 request-descriptor discipline that makes
// the scheduler's QoS claims real: every I/O entering the stack says
// what it is.
//
//   - An ioreq.Req composite literal outside package ioreq must set
//     Class explicitly. A forgotten Class silently dispatches at the
//     volume's fallback routing — exactly the "layered stack loses
//     request semantics" failure the descriptor exists to prevent. A
//     deliberately intent-free descriptor is spelled ioreq.Plain(w).
//   - A zero-value storage.IOCtx{} handed to an API call falls back to
//     a private serial clock at runtime; the NilCtxFallbacks counter
//     catches that only on exercised paths. Build contexts with
//     storage.NewIOCtx instead.
//   - In serve-layer packages (import path suffix "/serve"), a keyed
//     ioreq.Req or storage.IOCtx literal must also set Tag: the serving
//     front's whole point is that every request carries its tenant's
//     stream tag down to the die queues, and a tagless context built
//     inside the front dispatches anonymously — admission accounting,
//     per-tenant blame and the burn-rate guard all lose that request.
//     Session.admit stamps the full descriptor; new serve code should
//     derive contexts from it rather than building bare ones.
var IOReqClass = &Analyzer{
	Name: "ioreqclass",
	Doc:  "flags ioreq.Req literals without an explicit Class, zero-value storage.IOCtx arguments, and tagless request literals in serve-layer packages",
	Run:  runIOReqClass,
}

const (
	ioreqPath   = "noftl/internal/ioreq"
	storagePath = "noftl/internal/storage"
)

func runIOReqClass(pass *Pass) {
	ownPkg := pass.BasePath() == ioreqPath
	serveLayer := strings.HasSuffix(pass.BasePath(), "/serve")
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if !ownPkg {
				checkReqLit(pass, n)
			}
			if serveLayer {
				checkServeTag(pass, n)
			}
		case *ast.CallExpr:
			checkZeroIOCtx(pass, n)
		}
		return true
	})
}

// checkReqLit flags keyed (or empty) ioreq.Req literals that omit the
// Class field. Positional literals necessarily spell every field, and
// package ioreq itself builds intent-free descriptors by definition
// (Plain, From), so it is exempt.
func checkReqLit(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok || !IsNamed(tv.Type, ioreqPath, "Req") {
		return
	}
	positional := false
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			positional = true
			break
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Class" {
			return
		}
	}
	if positional {
		return
	}
	pass.Reportf(lit.Pos(),
		"ioreq.Req literal without an explicit Class: declare the scheduler class the request dispatches at (use ioreq.Plain for a deliberately intent-free descriptor)")
}

// checkServeTag flags keyed (or empty) request literals in serve-layer
// packages that omit the Tag field. Positional literals spell every
// field and are exempt, like checkReqLit.
func checkServeTag(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	var kind string
	switch {
	case IsNamed(tv.Type, ioreqPath, "Req"):
		kind = "ioreq.Req"
	case IsNamed(tv.Type, storagePath, "IOCtx"):
		kind = "storage.IOCtx"
	default:
		return
	}
	positional := false
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			positional = true
			break
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Tag" {
			return
		}
	}
	if positional {
		return
	}
	pass.Reportf(lit.Pos(),
		"serve-layer %s literal without a tenant Tag: every request the serving front issues must carry its tenant's stream tag (Session.admit stamps the full descriptor — derive from it)", kind)
}

// checkZeroIOCtx flags a zero-value storage.IOCtx composite literal
// used directly as a call argument or method receiver.
func checkZeroIOCtx(pass *Pass, call *ast.CallExpr) {
	exprs := append([]ast.Expr(nil), call.Args...)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		exprs = append(exprs, sel.X)
	}
	for _, arg := range exprs {
		e := ast.Unparen(arg)
		if u, ok := e.(*ast.UnaryExpr); ok {
			e = ast.Unparen(u.X)
		}
		lit, ok := e.(*ast.CompositeLit)
		if !ok || len(lit.Elts) > 0 {
			continue
		}
		tv, ok := pass.Info.Types[lit]
		if !ok || !IsNamed(tv.Type, storagePath, "IOCtx") {
			continue
		}
		pass.Reportf(arg.Pos(),
			"zero-value storage.IOCtx passed to a call: it substitutes a private clock at runtime (counted by NilCtxFallbacks); build the context with storage.NewIOCtx")
	}
}
