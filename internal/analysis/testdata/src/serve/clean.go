// Nothing in this file may produce a diagnostic: these are the
// sanctioned forms of the patterns flagged.go gets caught on.
package serve

import (
	"noftl/internal/ioreq"
	"noftl/internal/sim"
	"noftl/internal/storage"
)

// Stamped carries the tenant's full request descriptor — class, stream
// tag, deadline — the way Session.admit builds contexts.
func Stamped(w sim.Waiter, tag uint32, deadline sim.Time) *storage.IOCtx {
	return &storage.IOCtx{W: w, Class: ioreq.ClassRead, Tag: tag, Deadline: deadline}
}

// TaggedReq attributes the descriptor to its tenant's stream.
func TaggedReq(w sim.Waiter, tag uint32) ioreq.Req {
	return ioreq.Req{W: w, Class: ioreq.ClassProgram, Tag: tag}
}
