// Every declaration in this file must produce a diagnostic (see
// expect.txt); clean.go holds the sanctioned counterparts. The
// serve-layer tag rule scopes by import-path suffix "/serve", so this
// fixture stands in for noftl/internal/serve.
package serve

import (
	"noftl/internal/ioreq"
	"noftl/internal/sim"
	"noftl/internal/storage"
)

// TaglessCtx stamps class and deadline but drops the tenant's stream
// tag — the request reaches the die queues anonymous, invisible to
// admission accounting and per-tenant blame.
func TaglessCtx(w sim.Waiter) *storage.IOCtx {
	return &storage.IOCtx{W: w, Class: ioreq.ClassRead, Deadline: 5 * sim.Millisecond}
}

// TaglessReq builds a classed descriptor with no tenant attribution.
func TaglessReq(w sim.Waiter) ioreq.Req {
	return ioreq.Req{W: w, Class: ioreq.ClassRead}
}

// EmptyCtx is the zero context spelled as a literal: tagless (and
// classless) by construction.
func EmptyCtx() *storage.IOCtx { return &storage.IOCtx{} }
