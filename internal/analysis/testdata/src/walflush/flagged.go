// Every declaration in this file must produce a diagnostic (see
// expect.txt); clean.go holds the sanctioned counterparts.
package walflush

import "noftl/internal/storage"

// BackgroundFlush is not an allowlisted site: a FlushBg here would
// queue commit records at this caller's (background) priority.
func BackgroundFlush(w *storage.WAL, ctx *storage.IOCtx, upTo uint64) error {
	return w.FlushBg(ctx, upTo)
}
