// Nothing in this file may produce a diagnostic: these are the
// sanctioned forms of the patterns flagged.go gets caught on.
package walflush

import "noftl/internal/storage"

// CommitFlush uses the commit-path flush, which escalates to the WAL
// class on its own.
func CommitFlush(w *storage.WAL, ctx *storage.IOCtx, upTo uint64) error {
	return w.Flush(ctx, upTo)
}
