// Every declaration in this file must produce a diagnostic (see
// expect.txt); clean.go holds the sanctioned counterparts.
package determinism

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"noftl/internal/stats"
)

// WallClock reads real time twice; both reads leak the wall clock.
func WallClock() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// GlobalDraw draws from the unseeded process-global source.
func GlobalDraw() int { return rand.Intn(10) }

// DumpUnsorted writes rows straight out of map order.
func DumpUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// TableUnsorted emits stats table rows in map order.
func TableUnsorted(t *stats.Table, m map[string]int) {
	for k, v := range m {
		t.Row(k, v)
	}
}

// CollectUnsorted lets map-ordered keys escape without a sort.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
