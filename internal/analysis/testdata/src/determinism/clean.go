// Nothing in this file may produce a diagnostic: these are the
// sanctioned forms of the patterns flagged.go gets caught on.
package determinism

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
)

// SeededDraw owns its random stream, so replays reproduce it.
func SeededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// DumpSorted collects the keys, sorts them, then writes: the collection
// append is legal because the same function sorts the slice.
func DumpSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// Sum folds a map without producing ordered output; iteration order
// cannot be observed.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
