// Nothing in this file may produce a diagnostic: these are the
// sanctioned forms of the patterns flagged.go gets caught on.
package metricname

import (
	"noftl/internal/ioreq"
	"noftl/internal/telemetry"
)

// RegisterClean uses constant layer.metric names, or a constant
// "layer." prefix with a suffix derived from a fixed enum.
func RegisterClean(r *telemetry.Registry, c ioreq.Class) {
	r.Counter("flash.erases", func() int64 { return 0 })
	r.Gauge("buffer.hit_rate", func() float64 { return 0 })
	r.Counter("sched.wait."+c.String()+"_us", func() int64 { return 0 })
}
