// Every registration in this file must produce a diagnostic (see
// expect.txt); clean.go holds the sanctioned counterparts.
package metricname

import "noftl/internal/telemetry"

// Register hands the registry names that break the layer.metric scheme.
func Register(r *telemetry.Registry, suffix string) {
	r.Counter("Flash.Erases", func() int64 { return 0 })
	r.Gauge("noprefix", func() float64 { return 0 })
	r.Counter(suffix+".count", func() int64 { return 0 })
}
