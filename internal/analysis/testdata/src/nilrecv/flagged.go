// Exported methods flagged here dereference a nil-safe receiver before
// (or without) the nil guard; expect.txt lists them. clean.go holds the
// sanctioned counterparts.
package nilrecv

// Probe opts into the nil-receiver contract (Start guards), so every
// exported pointer-receiver method must guard before touching fields.
type Probe struct{ n int }

// Start follows the contract.
func (p *Probe) Start() {
	if p == nil {
		return
	}
	p.n++
}

// Count touches p.n with no guard at all.
func (p *Probe) Count() int { return p.n }

// End reads the field before its guard.
func (p *Probe) End() int {
	v := p.n
	if p == nil {
		return 0
	}
	return v
}
