// Nothing in this file may produce a diagnostic: these are the
// sanctioned forms of the patterns flagged.go gets caught on.
package nilrecv

// Gauge honours the contract in every exported method.
type Gauge struct{ v int }

// Add guards before the field write.
func (g *Gauge) Add(d int) {
	if g == nil {
		return
	}
	g.v += d
}

// Value guards before the field read.
func (g *Gauge) Value() int {
	if g == nil {
		return 0
	}
	return g.v
}

// value is unexported: the contract binds only the exported API.
func (g *Gauge) value() int { return g.v }

// Plain never nil-checks a receiver, so it never opted into the
// contract; direct field access is fine.
type Plain struct{ v int }

// Value dereferences freely on the non-contract type.
func (p *Plain) Value() int { return p.v }
