// Nothing in this file may produce a diagnostic: these are the
// sanctioned forms of the patterns flagged.go gets caught on.
package ioreqclass

import (
	"noftl/internal/ioreq"
	"noftl/internal/sim"
	"noftl/internal/storage"
)

// Classed declares the scheduler class the request dispatches at.
func Classed(w sim.Waiter) ioreq.Req {
	return ioreq.Req{W: w, Class: ioreq.ClassGC}
}

// Intentless spells deliberate intent-freedom the sanctioned way.
func Intentless(w sim.Waiter) ioreq.Req { return ioreq.Plain(w) }

// PlumbedCtx builds the context with the constructor.
func PlumbedCtx(data, logv storage.Volume) error {
	return storage.Format(storage.NewIOCtx(&sim.ClockWaiter{}), data, logv)
}
