// Every declaration in this file must produce a diagnostic (see
// expect.txt); clean.go holds the sanctioned counterparts.
package ioreqclass

import (
	"noftl/internal/ioreq"
	"noftl/internal/sim"
	"noftl/internal/storage"
)

// Classless builds a descriptor that never says what it is.
func Classless(w sim.Waiter) ioreq.Req {
	return ioreq.Req{W: w}
}

// Empty is the zero descriptor spelled as a literal.
func Empty() ioreq.Req { return ioreq.Req{} }

// ZeroCtxArg hands a zero-value context to an engine API.
func ZeroCtxArg(data, logv storage.Volume) error {
	return storage.Format(&storage.IOCtx{}, data, logv)
}

// ZeroCtxRecv calls a method straight on a zero-value context.
func ZeroCtxRecv() ioreq.Req { return (&storage.IOCtx{}).Req() }
