// Fixture for the suppression mechanism: every function violates
// determinism the same way, and what varies is the //noftl:ignore
// directive. expect.txt shows which findings survive.
package ignore

import "time"

// Paced carries a well-formed standalone directive: it silences exactly
// the one determinism finding on the next line.
func Paced() time.Time {
	//noftl:ignore determinism fixture: sanctioned wall-clock use
	return time.Now()
}

// Trailing carries the directive on the flagged line itself.
func Trailing() time.Time {
	return time.Now() //noftl:ignore determinism fixture: trailing form works too
}

// Bare omits the reason: the finding stays AND the directive itself is
// reported under the "ignore" pseudo-analyzer.
func Bare() time.Time {
	//noftl:ignore determinism
	return time.Now()
}

// Typo names an analyzer that doesn't exist: nothing is suppressed and
// the typo is reported, so a misspelling can't silently eat findings.
func Typo() time.Time {
	//noftl:ignore determinsm misspelled names must not suppress anything
	return time.Now()
}

// Naked has no fields at all.
func Naked() time.Time {
	//noftl:ignore
	return time.Now()
}
