package analysis

// Golden-diagnostic tests: each testdata/src/<fixture> package is
// loaded with the real loader, run under one analyzer, and the
// formatted findings (paths relative to the fixture directory) must
// match the fixture's expect.txt byte for byte. Regenerate goldens
// with
//
//	NOFTLVET_UPDATE_GOLDEN=1 go test ./internal/analysis
//
// and review the diff like any other change.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// One loader for the whole test binary: the GOROOT source importer's
// cache is the expensive part, and it is shared across fixtures.
var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { loaderVal, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loaderVal
}

// runFixture loads testdata/src/<name> and returns the diagnostics of
// the given analyzers plus the fixture's absolute directory.
func runFixture(t *testing.T, name string, analyzers []*Analyzer) ([]Diagnostic, string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(sharedLoader(t), dir, []string{"."}, analyzers)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return diags, dir
}

// formatDiags renders diagnostics the way noftlvet prints them, with
// filenames relative to the fixture directory.
func formatDiags(t *testing.T, dir string, diags []Diagnostic) string {
	t.Helper()
	var b strings.Builder
	for _, d := range diags {
		rel, err := filepath.Rel(dir, d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "%s:%d: %s: %s\n", filepath.ToSlash(rel), d.Pos.Line, d.Analyzer, d.Message)
	}
	return b.String()
}

func TestAnalyzerGoldens(t *testing.T) {
	cases := []struct {
		fixture   string
		analyzers []*Analyzer
	}{
		{"determinism", []*Analyzer{Determinism}},
		{"ioreqclass", []*Analyzer{IOReqClass}},
		// The serve fixture exercises ioreqclass's serve-layer tag rule
		// (scoped by the "/serve" import-path suffix, which the fixture
		// directory shares with noftl/internal/serve).
		{"serve", []*Analyzer{IOReqClass}},
		{"walflush", []*Analyzer{WALFlush}},
		{"nilrecv", []*Analyzer{NilRecv}},
		{"metricname", []*Analyzer{MetricName}},
		// The ignore fixture's violations are determinism ones; the
		// malformed directives surface under the "ignore" pseudo-analyzer
		// regardless of which analyzers run.
		{"ignore", []*Analyzer{Determinism}},
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			diags, dir := runFixture(t, c.fixture, c.analyzers)
			got := formatDiags(t, dir, diags)
			if len(diags) == 0 {
				t.Fatalf("fixture %s produced no diagnostics; the flagged cases are being missed", c.fixture)
			}
			for _, d := range diags {
				if filepath.Base(d.Pos.Filename) == "clean.go" {
					t.Errorf("clean.go must stay clean, got: %s", d)
				}
			}
			golden := filepath.Join(dir, "expect.txt")
			if os.Getenv("NOFTLVET_UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", golden)
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with NOFTLVET_UPDATE_GOLDEN=1 to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s\n--- got\n%s--- want\n%s", golden, got, want)
			}
		})
	}
}

// TestGoldensAreDeterministic reruns one fixture and demands identical
// bytes: diagnostic ordering is part of the output contract.
func TestGoldensAreDeterministic(t *testing.T) {
	first, dir := runFixture(t, "determinism", []*Analyzer{Determinism})
	for i := 0; i < 3; i++ {
		again, _ := runFixture(t, "determinism", []*Analyzer{Determinism})
		if formatDiags(t, dir, again) != formatDiags(t, dir, first) {
			t.Fatal("diagnostic output differs across runs")
		}
	}
}
