package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of the enclosing module from
// source. It is module-aware for the module's own import paths
// (resolved relative to the go.mod directory) and resolves standard-
// library imports from GOROOT source, so it needs nothing beyond the
// standard library — the constraint the whole framework lives under.
//
// Imported packages are type-checked once (without their test files)
// and cached; target packages are additionally type-checked with their
// in-package test files, and external _test packages become their own
// load unit, exactly like the go tool's package model.
type Loader struct {
	// Fset positions every file the loader touches.
	Fset *token.FileSet
	// ModulePath and ModuleDir identify the enclosing module.
	ModulePath string
	ModuleDir  string
	// IncludeTests adds _test.go files of target packages (default on
	// in noftlvet; fixtures don't use them).
	IncludeTests bool

	ctx      build.Context
	sizes    types.Sizes
	std      types.ImporterFrom
	cache    map[string]*types.Package
	checking map[string]bool
}

// Package is one loaded-and-checked unit handed to analyzers.
type Package struct {
	// Path is the unit's import path ("_test"-suffixed for external
	// test packages).
	Path string
	// Dir is the directory the files came from.
	Dir string
	// Files is the parsed syntax, comments included.
	Files []*ast.File
	// Pkg and Info are the type-check results.
	Pkg  *types.Package
	Info *types.Info
}

// NewLoader builds a loader for the module containing dir (found by
// walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	// Cgo-gated files would need the cgo tool to type-check; every
	// package in this module (and the std subset it pulls in) has a
	// pure-Go configuration, so exclude them.
	ctx.CgoEnabled = false
	fset := token.NewFileSet()
	l := &Loader{
		Fset:         fset,
		ModulePath:   modPath,
		ModuleDir:    modDir,
		IncludeTests: true,
		ctx:          ctx,
		sizes:        types.SizesFor("gc", runtime.GOARCH),
		cache:        map[string]*types.Package{},
		checking:     map[string]bool{},
	}
	// The source importer resolves non-module imports (std) by parsing
	// GOROOT source; it shares l.Fset so every position is printable.
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// findModule walks up from dir to the nearest go.mod and reads its
// module path.
func findModule(dir string) (modDir, modPath string, err error) {
	for d := dir; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Load expands the package patterns (a directory, or a "dir/..."
// wildcard, relative to base) and returns the type-checked units in
// deterministic path order. A package with in-package tests and an
// external _test package yields separate units for each.
func (l *Loader) Load(base string, patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(base, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkgs, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkgs...)
	}
	return out, nil
}

// expand turns patterns into a sorted, deduplicated directory list.
// Directories named "testdata", hidden directories, and directories
// with no buildable Go files are skipped, matching the go tool.
func (l *Loader) expand(base string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Join(base, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if l.hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		dir := filepath.Join(base, filepath.FromSlash(pat))
		if !l.hasGoFiles(dir) {
			return nil, fmt.Errorf("no buildable Go files in %s", dir)
		}
		add(dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func (l *Loader) hasGoFiles(dir string) bool {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return false
	}
	return len(bp.GoFiles)+len(bp.TestGoFiles)+len(bp.XTestGoFiles) > 0
}

// importPath maps a module directory to its import path.
func (l *Loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, l.ModulePath)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir type-checks one directory's units: the package (in-package
// test files included when IncludeTests) and, separately, its external
// _test package if one exists.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	path, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	var out []*Package
	files := append([]string(nil), bp.GoFiles...)
	if l.IncludeTests {
		files = append(files, bp.TestGoFiles...)
	}
	if len(files) > 0 {
		pkg, err := l.check(path, dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
		// Let this directory's external _test package (and anything
		// else loaded later) import the test-inclusive view, the way
		// the go tool links test binaries.
		if _, ok := l.cache[path]; !ok {
			l.cache[path] = pkg.Pkg
		}
	}
	if l.IncludeTests && len(bp.XTestGoFiles) > 0 {
		pkg, err := l.check(path+"_test", dir, bp.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// check parses and type-checks one unit with the shared importer.
func (l *Loader) check(path, dir string, filenames []string) (*Package, error) {
	sort.Strings(filenames)
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Sizes:    l.sizes,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for i, e := range errs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more errors", len(errs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("type-checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	return &Package{Path: path, Dir: dir, Files: files, Pkg: pkg, Info: info}, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-path imports are
// type-checked from the module tree (test files excluded, results
// cached), everything else is delegated to the GOROOT source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path != l.ModulePath && !strings.HasPrefix(path, l.ModulePath+"/") {
		return l.std.ImportFrom(path, srcDir, mode)
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")))
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	pkg, err := l.check(path, dir, append([]string(nil), bp.GoFiles...))
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg.Pkg
	return pkg.Pkg, nil
}
