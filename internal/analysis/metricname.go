package analysis

import (
	"go/ast"
	"go/constant"
	"regexp"
)

// MetricName enforces the PR-6 registry naming scheme: metric names
// follow "layer.metric" (flash.erases, sched.wait.read_us,
// buffer.hit_rate), and registration order is the column order of every
// export — so names must be compile-time stable. A dynamic name built
// from runtime state can differ between runs, silently desyncing series
// columns, Prometheus exposition and the golden exports.
//
// A registration passes when its name argument is a constant matching
// layer.metric, or a concatenation whose leftmost operand is a constant
// "layer." prefix (the sanctioned per-class pattern:
// "sched.wait."+class.String()+"_us" — the derived part enumerates a
// fixed enum, so the set is stable for a fixed build).
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "flags Registry registrations with non-constant names or names not matching layer.metric",
	Run:  runMetricName,
}

const telemetryPath = "noftl/internal/telemetry"

var (
	metricNameRE   = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)
	metricPrefixRE = regexp.MustCompile(`^[a-z][a-z0-9_]*\.`)
)

func runMetricName(pass *Pass) {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.Callee(call)
		if fn == nil || fn.Signature().Recv() == nil || len(call.Args) < 1 {
			return true
		}
		if name := fn.Name(); name != "Gauge" && name != "Counter" {
			return true
		}
		if !IsNamed(fn.Signature().Recv().Type(), telemetryPath, "Registry") {
			return true
		}
		arg := call.Args[0]
		if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			name := constant.StringVal(tv.Value)
			if !metricNameRE.MatchString(name) {
				pass.Reportf(arg.Pos(),
					"metric name %q doesn't match the layer.metric scheme (lowercase [a-z0-9_] segments joined by dots)", name)
			}
			return true
		}
		if pre, ok := leftmostConst(pass, arg); ok && metricPrefixRE.MatchString(pre) {
			return true
		}
		pass.Reportf(arg.Pos(),
			"non-constant metric name: registry columns must be build-stable — use a constant \"layer.metric\" name (a constant \"layer.\" prefix with a derived suffix is allowed)")
		return true
	})
}

// leftmostConst descends the left spine of a + concatenation and
// returns the leftmost operand's constant string value.
func leftmostConst(pass *Pass, e ast.Expr) (string, bool) {
	for {
		be, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok {
			break
		}
		e = be.X
	}
	if tv, ok := pass.Info.Types[ast.Unparen(e)]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	return "", false
}
