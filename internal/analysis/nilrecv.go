package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilRecv enforces the telemetry nil-receiver contract (PR 6): types
// like ioreq.Span are documented nil-receiver-safe so instrumentation
// points can call through without guarding — a stack with telemetry off
// pays one nil check per call site, inside the method. The contract is
// all-or-nothing: one exported method that touches a field before its
// nil guard turns every unguarded call site into a latent panic that
// only fires with telemetry disabled, the configuration tests exercise
// least.
//
// A type opts into the contract by having any pointer-receiver method
// that nil-checks its receiver. For contract types, every exported
// pointer-receiver method must check the receiver against nil before
// the first receiver field access. Calling another method on the
// receiver is fine (that method guards itself, per the contract).
var NilRecv = &Analyzer{
	Name: "nilrecv",
	Doc:  "flags exported pointer-receiver methods of nil-safe types that dereference the receiver before the nil guard",
	Run:  runNilRecv,
}

func runNilRecv(pass *Pass) {
	type method struct {
		fd   *ast.FuncDecl
		recv *types.Var // the receiver variable, nil when unnamed
	}
	byType := map[*types.Named][]method{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Signature()
			if sig.Recv() == nil {
				continue
			}
			ptr, ok := sig.Recv().Type().(*types.Pointer)
			if !ok {
				continue
			}
			named, ok := types.Unalias(ptr.Elem()).(*types.Named)
			if !ok {
				continue
			}
			byType[named] = append(byType[named], method{fd: fd, recv: sig.Recv()})
		}
	}
	for _, methods := range byType {
		contract := false
		for _, m := range methods {
			if pos := nilCheckPos(pass, m.fd, m.recv); pos.IsValid() {
				contract = true
				break
			}
		}
		if !contract {
			continue
		}
		for _, m := range methods {
			if !m.fd.Name.IsExported() {
				continue
			}
			fieldPos := firstFieldAccess(pass, m.fd, m.recv)
			if !fieldPos.IsValid() {
				continue
			}
			guardPos := nilCheckPos(pass, m.fd, m.recv)
			if guardPos.IsValid() && guardPos < fieldPos {
				continue
			}
			pass.Reportf(m.fd.Pos(),
				"exported method %s dereferences its nil-safe receiver before the nil guard; start with `if %s == nil { return ... }` (the type's methods are nil-receiver-safe by contract)",
				m.fd.Name.Name, recvName(m.fd))
		}
	}
}

func recvName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List[0].Names) > 0 {
		return fd.Recv.List[0].Names[0].Name
	}
	return "recv"
}

// nilCheckPos returns the position of the first `recv == nil` /
// `recv != nil` comparison in the method body (NoPos when absent).
func nilCheckPos(pass *Pass, fd *ast.FuncDecl, recv *types.Var) token.Pos {
	pos := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if (isRecvIdent(pass, be.X, recv) && isNil(pass, be.Y)) ||
			(isRecvIdent(pass, be.Y, recv) && isNil(pass, be.X)) {
			pos = be.Pos()
			return false
		}
		return true
	})
	return pos
}

// firstFieldAccess returns the position of the method body's first
// receiver field selection (read or write — both dereference).
func firstFieldAccess(pass *Pass, fd *ast.FuncDecl, recv *types.Var) token.Pos {
	pos := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if !isRecvIdent(pass, n.X, recv) {
				return true
			}
			if sel, ok := pass.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				pos = n.Pos()
				return false
			}
		case *ast.StarExpr:
			if isRecvIdent(pass, n.X, recv) {
				pos = n.Pos()
				return false
			}
		}
		return true
	})
	return pos
}

func isRecvIdent(pass *Pass, e ast.Expr, recv *types.Var) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && recv != nil && pass.Info.Uses[id] == recv
}

func isNil(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.Info.Uses[id].(*types.Nil)
	return isNilObj
}
