package analysis

import (
	"fmt"
	"go/ast"
)

// WALFlush enforces the PR-5 shared-log priority-inversion guard:
// WAL.Flush is the commit path (it always escalates to the WAL class,
// because a group-commit flush covers other transactions' records);
// WAL.FlushBg keeps the caller's background class and is legal only at
// the known background flush sites — the buffer pool's write-back
// (WAL-before-data) and the checkpointer. A FlushBg call anywhere else
// re-opens the inversion window the guard closed: a low-priority
// caller's flush would queue commit records at background priority.
var WALFlush = &Analyzer{
	Name: "walflush",
	Doc:  "flags WAL.FlushBg calls outside the allowlisted background flush sites",
	Run:  runWALFlush,
}

// WALFlushBgAllow lists the sanctioned FlushBg call sites as
// "pkgpath.(recv).func" strings.
var WALFlushBgAllow = map[string]bool{
	// Write-back of a dirty frame: WAL-before-data at the flusher's
	// declared class.
	"noftl/internal/storage.(*BufferPool).writeFrame": true,
	// The checkpointer flushing the log behind its checkpoint record.
	"noftl/internal/storage.(*Engine).Checkpoint": true,
}

func runWALFlush(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			site := callSite(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := pass.Callee(call)
				if fn == nil || fn.Name() != "FlushBg" || fn.Signature().Recv() == nil {
					return true
				}
				if !IsNamed(fn.Signature().Recv().Type(), storagePath, "WAL") {
					return true
				}
				if WALFlushBgAllow[site] {
					return true
				}
				pass.Reportf(call.Pos(),
					"WAL.FlushBg outside an allowlisted background flush site (%s): commit-path and foreground flushes must use WAL.Flush, which escalates to the WAL class (shared-log priority-inversion guard)", site)
				return true
			})
		}
	}
}

// callSite renders a declaration as "pkgpath.func" or
// "pkgpath.(recv).func" for allowlist matching.
func callSite(pass *Pass, fd *ast.FuncDecl) string {
	base := pass.BasePath()
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return base + "." + fd.Name.Name
	}
	recv := ""
	switch t := fd.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		if id, ok := baseIdent(t.X); ok {
			recv = "*" + id
		}
	default:
		if id, ok := baseIdent(t); ok {
			recv = id
		}
	}
	return fmt.Sprintf("%s.(%s).%s", base, recv, fd.Name.Name)
}

// baseIdent unwraps generics/parens down to a receiver type name.
func baseIdent(e ast.Expr) (string, bool) {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		return t.Name, true
	case *ast.IndexExpr:
		return baseIdent(t.X)
	case *ast.IndexListExpr:
		return baseIdent(t.X)
	}
	return "", false
}
