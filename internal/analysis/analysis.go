// Package analysis is noftlvet's stdlib-only static-analysis framework:
// a source loader (go/parser + go/types, no golang.org/x/tools — the
// module has zero external dependencies and must stay that way), a
// small analyzer API, and a driver that runs every analyzer over a set
// of packages, applies //noftl:ignore suppression comments, and emits
// deterministic "file:line: analyzer: message" diagnostics.
//
// The analyzers encode the repo's cross-layer invariants — the rules
// each PR established and runtime tests only catch when they happen to
// exercise the violating path. See the individual analyzer files
// (determinism.go, ioreqclass.go, walflush.go, nilrecv.go,
// metricname.go) for the invariant each one enforces, and DESIGN.md
// "Static invariants" for the PR that introduced each invariant.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //noftl:ignore comments.
	Name string
	// Doc is the one-line description printed by noftlvet -list.
	Doc string
	// Run inspects one package pass and reports findings on it.
	Run func(*Pass)
}

// All returns the full analyzer suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		IOReqClass,
		WALFlush,
		NilRecv,
		MetricName,
	}
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check this pass runs.
	Analyzer *Analyzer
	// Fset positions every node of every loaded file.
	Fset *token.FileSet
	// Path is the package's import path (test variants of a package
	// keep the package's own path; external _test packages get the
	// "path_test" suffix the go tool uses).
	Path string
	// Files is the package's syntax, parsed with comments.
	Files []*ast.File
	// Pkg and Info are the go/types results for Files.
	Pkg  *types.Package
	Info *types.Info

	diags *[]Diagnostic
}

// BasePath is the pass's import path with any external-test "_test"
// suffix stripped: the path analyzers should scope and allowlist by,
// so a package's own tests live under its rules.
func (p *Pass) BasePath() string {
	return strings.TrimSuffix(p.Path, "_test")
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Inspect walks every file of the pass in depth-first order, calling fn
// the way ast.Inspect does.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// Callee resolves a call expression to the *types.Func it invokes
// (package-level function or method), or nil for calls through
// function values, built-ins, and conversions.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// NamedType unwraps pointers and aliases down to the *types.Named
// behind t, or nil.
func NamedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// IsNamed reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := NamedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding (Filename and Line are the contract;
	// Column is informational).
	Pos token.Position
	// Analyzer names the check that produced the finding ("ignore" for
	// malformed suppression comments, which the driver itself emits).
	Analyzer string
	// Message describes the violated invariant.
	Message string
}

// String renders the diagnostic in the "file:line: analyzer: message"
// format noftlvet prints.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// sortDiagnostics orders findings by file, line, analyzer, message so
// output is deterministic across runs.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
