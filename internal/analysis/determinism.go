package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the repo's byte-determinism contract: a fixed
// seed must produce byte-identical bench tables and exports (the golden
// files of PRs 6–8 depend on it). Three bug classes break it silently:
//
//   - wall-clock reads (time.Now / time.Since) leaking into simulation
//     or exporter code — the simulated clock (sim.Time) is the only
//     legal time source outside the explicitly real-time bridges;
//   - the process-global math/rand source, which is unseeded (Go 1.20+
//     seeds it randomly) — every random stream must come from
//     rand.New(rand.NewSource(seed));
//   - iterating a map while producing ordered output (writing to an
//     io.Writer / strings.Builder, emitting stats table rows, or
//     collecting into a slice that is never sorted) — map order is
//     randomized per run.
//
// The HTTP health monitor is allowlisted for wall-clock use: it serves
// real clients on the real clock by design (PR 7). Other deliberate
// uses (the sim package's RealWaiter bridge) carry //noftl:ignore
// comments at the call sites.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flags wall-clock reads, unseeded global math/rand, and ordered output from map iteration",
	Run:  runDeterminism,
}

// DeterminismWallClockAllow lists package paths whose wall-clock use is
// sanctioned wholesale (real-time-facing components).
var DeterminismWallClockAllow = map[string]bool{
	// The live monitor serves /metrics to real HTTP clients; its
	// timestamps are wall-clock by design.
	"noftl/internal/telemetry/health": true,
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				determinismFunc(pass, fd)
			}
		}
	}
}

// determinismFunc checks one function body (nested function literals
// included — a sort call anywhere in the same declaration counts as
// ordering the collected keys).
func determinismFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkWallClock(pass, n)
			checkGlobalRand(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, fd, n)
		}
		return true
	})
}

func checkWallClock(pass *Pass, call *ast.CallExpr) {
	fn := pass.Callee(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return
	}
	if name := fn.Name(); name == "Now" || name == "Since" {
		if DeterminismWallClockAllow[pass.BasePath()] {
			return
		}
		pass.Reportf(call.Pos(),
			"time.%s reads the wall clock; sim and exporter code must use the simulated clock (sim.Time)", name)
	}
}

func checkGlobalRand(pass *Pass, call *ast.CallExpr) {
	fn := pass.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return
	}
	if fn.Signature().Recv() != nil {
		return // method on *rand.Rand: the caller owns the seed
	}
	if strings.HasPrefix(fn.Name(), "New") {
		return // constructors (New, NewSource, NewZipf) draw nothing
	}
	pass.Reportf(call.Pos(),
		"rand.%s draws from the unseeded process-global source; use rand.New(rand.NewSource(seed))", fn.Name())
}

// checkMapRange flags `for ... := range m` over a map when the body
// produces ordered output: writes to a Writer/Builder, emits stats
// table rows, or appends to an outer slice that the function never
// sorts. The sanctioned pattern — collect the keys, sort them, range
// the sorted slice — passes because the collection append is followed
// by a sort call on the same variable.
func checkMapRange(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	t := pass.Info.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	var reason string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if r := orderedSink(pass, call); r != "" {
			reason = r
			return false
		}
		if ap := unsortedAppend(pass, fd, rng, call); ap != "" {
			reason = ap
			return false
		}
		return true
	})
	if reason != "" {
		pass.Reportf(rng.Pos(),
			"map iteration %s; map order is nondeterministic — collect and sort the keys first", reason)
	}
}

// orderedSink reports whether call writes ordered output (non-empty
// description) directly.
func orderedSink(pass *Pass, call *ast.CallExpr) string {
	fn := pass.Callee(call)
	if fn == nil {
		return ""
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Signature().Recv() == nil {
		if strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print") {
			return "writes output (fmt." + name + ")"
		}
	}
	if fn.Signature().Recv() == nil {
		return ""
	}
	recv := fn.Signature().Recv().Type()
	if strings.HasPrefix(name, "Write") {
		return "writes output (" + types.TypeString(recv, nil) + "." + name + ")"
	}
	if name == "Row" && IsNamed(recv, "noftl/internal/stats", "Table") {
		return "emits stats table rows (Table.Row)"
	}
	return ""
}

// unsortedAppend reports (non-empty description) an `x = append(x,…)`
// in the loop body where x is declared outside the range statement and
// no sort call on x appears anywhere in the enclosing declaration.
func unsortedAppend(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return ""
	}
	if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return ""
	}
	target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return ""
	}
	obj := pass.Info.Uses[target]
	if obj == nil || obj.Parent() == nil {
		return ""
	}
	// Only variables declared outside the loop escape it; an append to
	// a loop-local accumulates nothing across iterations.
	if rng.Pos() <= obj.Pos() && obj.Pos() <= rng.End() {
		return ""
	}
	if sortedInFunc(pass, fd, obj) {
		return ""
	}
	return "collects into " + obj.Name() + " without a later sort"
}

// sortedInFunc reports whether the declaration contains a sort./slices.
// sort call mentioning obj.
func sortedInFunc(pass *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.Callee(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		p := fn.Pkg().Path()
		isSort := (p == "sort" && (strings.HasPrefix(fn.Name(), "Sort") || fn.Name() == "Strings" ||
			fn.Name() == "Ints" || fn.Name() == "Float64s" || fn.Name() == "Slice" ||
			fn.Name() == "SliceStable" || fn.Name() == "Stable")) ||
			(p == "slices" && strings.HasPrefix(fn.Name(), "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if aid, ok := an.(*ast.Ident); ok && pass.Info.Uses[aid] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
