package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScanIgnores exercises the directive grammar directly: well-formed
// directives land in the set, each malformed shape is its own
// diagnostic.
func TestScanIgnores(t *testing.T) {
	const src = `package p

func a() {
	//noftl:ignore determinism a perfectly good reason
	_ = 1
}

func b() {
	//noftl:ignore determinism
	_ = 2
}

func c() {
	//noftl:ignore nosuch reasons don't save unknown analyzers
	_ = 3
}

func d() {
	//noftl:ignore
	_ = 4
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ig, diags := scanIgnores(fset, []*ast.File{f}, map[string]bool{"determinism": true})
	if len(ig) != 1 {
		t.Fatalf("ignore set size = %d, want 1 (only the well-formed directive): %v", len(ig), ig)
	}
	if !ig[ignoreKey{file: "p.go", line: 4, analyzer: "determinism"}] {
		t.Fatalf("well-formed directive missing from set: %v", ig)
	}
	if len(diags) != 3 {
		t.Fatalf("malformed-directive diagnostics = %d, want 3: %v", len(diags), diags)
	}
	wants := []string{"needs a reason", "unknown analyzer nosuch", "needs an analyzer name and a reason"}
	for _, want := range wants {
		found := false
		for _, d := range diags {
			if d.Analyzer == ignoreAnalyzer && strings.Contains(d.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no %q diagnostic among %v", want, diags)
		}
	}
}

// TestSuppressesAdjacency: a directive silences the same line and the
// line below it (standalone form), nothing further away.
func TestSuppressesAdjacency(t *testing.T) {
	ig := ignoreSet{ignoreKey{file: "x.go", line: 10, analyzer: "determinism"}: true}
	at := func(line int, analyzer string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: "x.go", Line: line}, Analyzer: analyzer}
	}
	if !ig.suppresses(at(10, "determinism")) {
		t.Error("trailing form (same line) must suppress")
	}
	if !ig.suppresses(at(11, "determinism")) {
		t.Error("standalone form (line above) must suppress")
	}
	if ig.suppresses(at(12, "determinism")) {
		t.Error("a directive two lines up must not suppress")
	}
	if ig.suppresses(at(10, "walflush")) {
		t.Error("a directive must only suppress the named analyzer")
	}
}

// TestIgnoreFixtureSuppressesExactlyOne pins the end-to-end behaviour:
// in the ignore fixture, the two well-formed directives each silence
// exactly one finding, and every malformed directive leaves its finding
// alive while adding an "ignore" diagnostic of its own.
func TestIgnoreFixtureSuppressesExactlyOne(t *testing.T) {
	diags, dir := runFixture(t, "ignore", []*Analyzer{Determinism})
	var det, ign int
	for _, d := range diags {
		switch d.Analyzer {
		case "determinism":
			det++
		case ignoreAnalyzer:
			ign++
		default:
			t.Errorf("unexpected analyzer in fixture output: %s", d)
		}
	}
	// Five time.Now sites minus the two suppressed (Paced, Trailing).
	if det != 3 {
		t.Errorf("determinism findings = %d, want 3:\n%s", det, formatDiags(t, dir, diags))
	}
	// Bare (no reason), Typo (unknown analyzer), Naked (no fields).
	if ign != 3 {
		t.Errorf("ignore diagnostics = %d, want 3:\n%s", ign, formatDiags(t, dir, diags))
	}
	// The suppressed sites are the ones adjacent to well-formed
	// directives; their lines must not appear at all.
	for _, d := range diags {
		if d.Analyzer != "determinism" {
			continue
		}
		if d.Pos.Line == pacedLine(t, dir) || d.Pos.Line == trailingLine(t, dir) {
			t.Errorf("suppressed site still reported: %s", d)
		}
	}
}

// pacedLine / trailingLine locate the suppressed time.Now sites by
// their marker text, so the test doesn't hardcode line numbers.
func pacedLine(t *testing.T, dir string) int {
	return lineContaining(t, filepath.Join(dir, "fixture.go"), "sanctioned wall-clock use") + 1
}

func trailingLine(t *testing.T, dir string) int {
	return lineContaining(t, filepath.Join(dir, "fixture.go"), "trailing form works too")
}

// lineContaining returns the 1-based line of the first occurrence of
// marker in the file.
func lineContaining(t *testing.T, path, marker string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, marker) {
			return i + 1
		}
	}
	t.Fatalf("marker %q not found in %s", marker, path)
	return 0
}
