package region

import (
	"noftl/internal/ioreq"
	"testing"

	"noftl/internal/flash"
	"noftl/internal/nand"
	"noftl/internal/sched"
	"noftl/internal/sim"
)

// TestRegionEraseStats checks the per-region erase-count reporting the
// wear-leveling sweep consumes: erasing blocks in one region must show
// up in that region's spread/average and leave the other untouched.
func TestRegionEraseStats(t *testing.T) {
	dev := flash.New(flash.EmulatorConfig(4, 16, nand.SLC))
	m, err := New(dev, DefaultDBLayout(1))
	if err != nil {
		t.Fatal(err)
	}
	logRegion := m.Region("log")
	if logRegion == nil {
		t.Fatal("no log region")
	}
	// Erase a few blocks of the log region's first die directly.
	w := &sim.ClockWaiter{}
	geo := dev.Geometry()
	die := logRegion.Dies[0]
	for b := 0; b < 3; b++ {
		if err := dev.EraseBlock(w, geo.PBNOf(die, 0, b)); err != nil {
			t.Fatal(err)
		}
	}
	for _, rs := range m.RegionStats() {
		switch rs.Name {
		case "log":
			if rs.MaxErase != 1 || rs.MinErase != 0 {
				t.Fatalf("log erase stats = min %d max %d, want 0/1", rs.MinErase, rs.MaxErase)
			}
			if rs.EraseSpread() != 1 {
				t.Fatalf("log spread = %d, want 1", rs.EraseSpread())
			}
			if rs.AvgErase <= 0 {
				t.Fatalf("log avg erase = %f, want > 0", rs.AvgErase)
			}
		case "data":
			if rs.MaxErase != 0 || rs.AvgErase != 0 {
				t.Fatalf("data region inherited erases: %+v", rs)
			}
		}
	}
}

// TestRegionSchedulerWiring checks that a layout with a scheduler routes
// region traffic through it: commands issued by DES processes are
// queued, serial loads bypass.
func TestRegionSchedulerWiring(t *testing.T) {
	dev := flash.New(flash.EmulatorConfig(4, 16, nand.SLC))
	k := sim.New()
	s := sched.New(k, dev, sched.Config{Policy: sched.Priority})
	lay := DefaultDBLayout(1)
	lay.Scheduler = s
	for i := range lay.Regions {
		if lay.Regions[i].Mapping == PageMapped {
			lay.Regions[i].BackgroundGC = true
		}
	}
	m, err := New(dev, lay)
	if err != nil {
		t.Fatal(err)
	}
	data, wal, err := m.Mount()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, dev.Geometry().PageSize)

	// Serial write: must bypass the queues.
	if err := data.Vol.Write(ioreq.Plain(&sim.ClockWaiter{}), 0, buf); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.TotalScheduled() != 0 {
		t.Fatalf("serial write was queued: %v", st.Scheduled)
	}

	// DES writes: volume programs and WAL appends must be classed.
	k.Go("client", func(p *sim.Proc) {
		w := sim.ProcWaiter{P: p}
		if err := data.Vol.Write(ioreq.Plain(w), 1, buf); err != nil {
			t.Error(err)
		}
		if err := data.Vol.Read(ioreq.Plain(w), 1, buf); err != nil {
			t.Error(err)
		}
		if _, err := wal.Log.Append(ioreq.Plain(w), buf); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	k.Shutdown()
	st := s.Stats()
	if st.Scheduled[sched.ClassProgram] == 0 {
		t.Fatal("data program not scheduled as ClassProgram")
	}
	if st.Scheduled[sched.ClassRead] == 0 {
		t.Fatal("read not scheduled as ClassRead")
	}
	if st.Scheduled[sched.ClassWAL] == 0 {
		t.Fatal("log append not scheduled as ClassWAL")
	}
}
