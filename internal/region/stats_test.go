package region

import (
	"math/rand"
	"noftl/internal/ioreq"
	"testing"

	"noftl/internal/delta"
	"noftl/internal/ftl"
	"noftl/internal/nand"
	"noftl/internal/sim"
)

// sumRegionStats adds up the per-region counters by name.
func sumRegionStats(m *Manager) ftl.Stats {
	var s ftl.Stats
	for _, rs := range m.RegionStats() {
		s = s.Add(rs.FTL)
	}
	return s
}

// driveMixedLoad pushes a page-mapped region through full writes, delta
// appends (with folds), invalidations and GC, and a sequential region
// through appends and truncation.
func driveMixedLoad(t *testing.T, m *Manager, seed int64, rounds int) {
	t.Helper()
	w := &sim.ClockWaiter{}
	rng := rand.New(rand.NewSource(seed))
	data := m.Volume("data")
	log := m.Log("log")
	ps := m.Device().Geometry().PageSize
	n := data.LogicalPages()
	page := make([]byte, ps)
	var logPos int64
	for i := 0; i < rounds; i++ {
		lpn := rng.Int63n(n)
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // full page write
			rng.Read(page[:16])
			if err := data.Write(ioreq.Plain(w), lpn, page); err != nil {
				t.Fatalf("round %d write: %v", i, err)
			}
		case 5, 6, 7: // small delta append
			payload := delta.Encode([]delta.Run{{Off: int(rng.Intn(ps - 64)), Len: 16}}, page)
			if err := data.WriteDelta(ioreq.Plain(w), lpn, payload); err != nil {
				t.Fatalf("round %d delta: %v", i, err)
			}
		case 8: // DBMS invalidation
			if err := data.Invalidate(lpn); err != nil {
				t.Fatal(err)
			}
		default: // log append
			if _, err := log.Append(ioreq.Plain(w), page); err != nil {
				t.Fatalf("round %d append: %v", i, err)
			}
			logPos++
			if logPos%64 == 0 {
				if err := log.Truncate(ioreq.Plain(w), logPos-16); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestRegionStatsSumToDeviceTotals is the accounting audit: with no
// failure injection, every erase, copyback, program and partial program
// the device observed must be attributed to exactly one region — across
// data-region GC, delta folds and log truncation.
func TestRegionStatsSumToDeviceTotals(t *testing.T) {
	dev := testDevice(t, 4, nand.Options{})
	m, err := New(dev, DefaultDBLayout(1))
	if err != nil {
		t.Fatal(err)
	}
	driveMixedLoad(t, m, 11, 6000)

	sum := sumRegionStats(m)
	if agg := m.Stats(); agg != sum {
		t.Fatalf("aggregate %+v != region sum %+v", agg, sum)
	}
	devStats := dev.Stats()
	if got, want := sum.Erases, devStats.Erases; got != want {
		t.Errorf("region erases %d, device saw %d", got, want)
	}
	if got, want := sum.GCCopybacks, devStats.Copybacks; got != want {
		t.Errorf("region copybacks %d, device saw %d", got, want)
	}
	if got, want := sum.HostWrites+sum.GCWrites, devStats.Programs; got != want {
		t.Errorf("region programs %d, device saw %d", got, want)
	}
	if got, want := sum.DeltaWrites, devStats.PartialPrograms; got != want {
		t.Errorf("region partial programs %d, device saw %d", got, want)
	}
	if sum.Folds == 0 {
		t.Error("mixed load folded no delta chains; accounting path untested")
	}
	if sum.Erases == 0 {
		t.Error("mixed load triggered no erases; accounting path untested")
	}

	// The log region must have done zero relocation work: its GC is
	// truncation.
	for _, rs := range m.RegionStats() {
		if rs.Mapping == SeqMapped && (rs.FTL.GCCopybacks != 0 || rs.FTL.GCWrites != 0) {
			t.Errorf("log region did GC copies: %+v", rs.FTL)
		}
		if rs.Occupancy() < 0 || rs.Occupancy() > 1 {
			t.Errorf("region %s occupancy %.3f out of range", rs.Name, rs.Occupancy())
		}
	}
}

// TestRegionStatsConsistentUnderBadBlocks repeats the audit with grown
// bad blocks: device totals now include failed operations the regions
// roll back, so the check is internal consistency — the aggregate still
// equals the per-region sum, salvage work is visible, and both regions
// stay functional.
func TestRegionStatsConsistentUnderBadBlocks(t *testing.T) {
	dev := testDevice(t, 4, nand.Options{ProgramFailProb: 0.001, Seed: 3})
	m, err := New(dev, DefaultDBLayout(1))
	if err != nil {
		t.Fatal(err)
	}
	driveMixedLoad(t, m, 13, 5000)

	sum := sumRegionStats(m)
	if agg := m.Stats(); agg != sum {
		t.Fatalf("aggregate %+v != region sum %+v", agg, sum)
	}
	if dev.Array().Counters().GrownBad == 0 {
		t.Error("no block grew bad; salvage accounting untested (adjust seed)")
	}
	// Successful programs can never exceed device attempts, and the
	// regions must account at least the successes.
	devStats := dev.Stats()
	if sum.HostWrites+sum.GCWrites > devStats.Programs {
		t.Errorf("regions claim %d programs, device only saw %d",
			sum.HostWrites+sum.GCWrites, devStats.Programs)
	}
	if sum.Erases > devStats.Erases {
		t.Errorf("regions claim %d erases, device only saw %d", sum.Erases, devStats.Erases)
	}
}
