package region

import (
	"encoding/binary"
	"noftl/internal/ioreq"
	"testing"

	"noftl/internal/flash"
	"noftl/internal/nand"
	"noftl/internal/sim"
)

func testDevice(t *testing.T, dies int, opts nand.Options) *flash.Device {
	t.Helper()
	opts.StoreData = true
	return flash.New(flash.Config{
		Geometry: nand.Geometry{
			Channels: 2, ChipsPerChannel: dies / 2, DiesPerChip: 1,
			PlanesPerDie: 2, BlocksPerPlane: 24, PagesPerBlock: 16,
			PageSize: 1024, OOBSize: 32,
		},
		Cell: nand.SLC,
		Nand: opts,
	})
}

func TestLayoutDiePartitioning(t *testing.T) {
	dev := testDevice(t, 4, nand.Options{})
	m, err := New(dev, DefaultDBLayout(1))
	if err != nil {
		t.Fatal(err)
	}
	log := m.Region("log")
	data := m.Region("data")
	if log == nil || data == nil {
		t.Fatal("default layout regions missing")
	}
	if len(log.Dies) != 1 || len(data.Dies) != 3 {
		t.Fatalf("die split log=%v data=%v", log.Dies, data.Dies)
	}
	seen := map[int]bool{}
	for _, r := range m.Regions() {
		for _, die := range r.Dies {
			if seen[die] {
				t.Fatalf("die %d assigned twice", die)
			}
			seen[die] = true
		}
	}
	if len(seen) != 4 {
		t.Fatalf("only %d of 4 dies assigned", len(seen))
	}
	if log.Log == nil || log.Vol != nil {
		t.Error("log region is not seq-mapped")
	}
	if data.Vol == nil || data.Log != nil {
		t.Error("data region is not page-mapped")
	}
}

func TestLayoutValidation(t *testing.T) {
	dev := testDevice(t, 4, nand.Options{})
	cases := []Layout{
		{}, // no regions
		{Regions: []Spec{{Name: "a", Dies: 5, Mapping: PageMapped}}},                                  // too many dies
		{Regions: []Spec{{Name: "a", Dies: 2, Mapping: PageMapped}, {Name: "a", Mapping: SeqMapped}}}, // dup name
		{Regions: []Spec{{Name: "a", Mapping: PageMapped}, {Name: "b", Mapping: SeqMapped}}},          // two remainders
		{Regions: []Spec{{Name: "a", Dies: 2, Mapping: PageMapped}}},                                  // dies left over
		{Regions: []Spec{{Name: "a", Dies: 4, Mapping: PageMapped}},
			Placement: map[Class]string{ClassWAL: "nope"}}, // unknown region in catalog
	}
	for i, layout := range cases {
		if _, err := New(dev, layout); err == nil {
			t.Errorf("case %d: invalid layout accepted", i)
		}
	}
}

func TestPlacementCatalog(t *testing.T) {
	dev := testDevice(t, 4, nand.Options{})
	layout := Layout{
		Regions: []Spec{
			{Name: "log", Dies: 1, Mapping: SeqMapped},
			{Name: "data", Mapping: PageMapped},
		},
		Placement: map[Class]string{ClassWAL: "log", ClassDefault: "data"},
	}
	m, err := New(dev, layout)
	if err != nil {
		t.Fatal(err)
	}
	if r := m.Place(ClassWAL); r == nil || r.Name != "log" {
		t.Errorf("WAL placed in %v", r)
	}
	// Heap has no entry: falls back to ClassDefault's region.
	if r := m.Place(ClassHeap); r == nil || r.Name != "data" {
		t.Errorf("heap placed in %v", r)
	}
	data, wal, err := m.Mount()
	if err != nil {
		t.Fatal(err)
	}
	if data.Name != "data" || wal == nil || wal.Name != "log" {
		t.Errorf("mount resolved data=%v wal=%v", data, wal)
	}
}

func TestMountRejectsSplitDataClasses(t *testing.T) {
	dev := testDevice(t, 4, nand.Options{})
	layout := Layout{
		Regions: []Spec{
			{Name: "a", Dies: 2, Mapping: PageMapped},
			{Name: "b", Mapping: PageMapped},
		},
		Placement: map[Class]string{ClassHeap: "a", ClassIndex: "b"},
	}
	m, err := New(dev, layout)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Mount(); err == nil {
		t.Error("mount accepted heaps and indexes in different regions")
	}
}

// TestRegionIsolationAndRebuild writes distinct content through both
// regions, restarts (Rebuild), and checks each region recovered its own
// state from its own dies.
func TestRegionIsolationAndRebuild(t *testing.T) {
	dev := testDevice(t, 4, nand.Options{})
	layout := DefaultDBLayout(1)
	m, err := New(dev, layout)
	if err != nil {
		t.Fatal(err)
	}
	w := &sim.ClockWaiter{}
	data := m.Volume("data")
	log := m.Log("log")

	page := make([]byte, 1024)
	for lpn := int64(0); lpn < 50; lpn++ {
		binary.LittleEndian.PutUint64(page, uint64(lpn)^0xD0D0)
		if err := data.Write(ioreq.Plain(w), lpn, page); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 40; i++ {
		binary.LittleEndian.PutUint64(page, uint64(i)^0x7070)
		if _, err := log.Append(ioreq.Plain(w), page); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Truncate(ioreq.Plain(w), 16); err != nil {
		t.Fatal(err)
	}

	m2, err := Rebuild(dev, layout, ioreq.Plain(w))
	if err != nil {
		t.Fatal(err)
	}
	data2, log2 := m2.Volume("data"), m2.Log("log")
	buf := make([]byte, 1024)
	for lpn := int64(0); lpn < 50; lpn++ {
		if err := data2.Read(ioreq.Plain(w), lpn, buf); err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint64(buf); got != uint64(lpn)^0xD0D0 {
			t.Fatalf("data page %d rebuilt as %x", lpn, got)
		}
	}
	head, next := log2.Bounds()
	if head != 16 || next != 40 {
		t.Fatalf("log window [%d,%d) after rebuild, want [16,40)", head, next)
	}
	for i := head; i < next; i++ {
		if err := log2.ReadAt(ioreq.Plain(w), i, buf); err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint64(buf); got != uint64(i)^0x7070 {
			t.Fatalf("log page %d rebuilt as %x", i, got)
		}
	}
}
