// Package region implements configurable flash regions: the die array
// is carved into named regions, each with its own die allocation, write
// frontier, mapping granularity, GC policy and over-provisioning — plus
// an object-placement catalog that lets the storage engine declare where
// each object class lives ("WAL → log region, heaps and B+-trees → data
// region").
//
// This is the step of the NoFTL research line that turns "the DBMS
// manages flash" into "the DBMS manages each write stream on its own
// terms": uFLIP-style measurements show flash behaves radically
// differently under sequential appends than under random updates, so a
// single mapping/GC policy for every page leaves performance on the
// table. A sequential log region is block-mapped (one translation entry
// per erase block) and reclaims space by truncation — no copies; a data
// region is page-mapped with hot/cold separation, DBMS-driven
// invalidation and incremental GC. Segregating the streams also keeps
// log pages out of data blocks, so data-region GC stops copying around
// soon-to-die log pages.
package region

import (
	"fmt"

	"noftl/internal/flash"
	"noftl/internal/ftl"
	"noftl/internal/ioreq"
	"noftl/internal/noftl"
	"noftl/internal/sched"
)

// Mapping selects a region's translation granularity.
type Mapping uint8

// Mapping granularities.
const (
	// PageMapped keeps a full page-level translation table (a noftl
	// volume): arbitrary logical-page updates, hot/cold frontiers,
	// delta-write support, incremental GC.
	PageMapped Mapping = iota
	// SeqMapped keeps one translation entry per erase block (an
	// ftl.SeqLog): append-only positions, truncation instead of GC.
	SeqMapped
)

// String names the mapping granularity.
func (m Mapping) String() string {
	if m == SeqMapped {
		return "seq"
	}
	return "page"
}

// Class identifies an object class for placement.
type Class uint8

// Object classes the placement catalog can route.
const (
	ClassDefault Class = iota
	ClassWAL           // ARIES log stream
	ClassHeap          // heap-file pages
	ClassIndex         // B+-tree pages
	ClassDelta         // page-differential (delta) appends
	classCount
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassWAL:
		return "wal"
	case ClassHeap:
		return "heap"
	case ClassIndex:
		return "index"
	case ClassDelta:
		return "delta"
	default:
		return "default"
	}
}

// Spec declares one region.
type Spec struct {
	// Name identifies the region ("log", "data", "cold", ...).
	Name string
	// Dies is the number of dies the region claims. Exactly one region
	// per layout may leave it 0 to take every unclaimed die.
	Dies int
	// Mapping selects the translation granularity.
	Mapping Mapping

	// Page-mapped knobs (forwarded to noftl.Config).
	OverProvision    float64
	Policy           ftl.GCPolicy
	LowWater         int
	MaxDeltaChain    int
	DisableHotCold   bool
	DisableWearLevel bool
	WearDelta        int

	// BackgroundGC configures a page-mapped region for worker-driven
	// cleaning (noftl.Config.BackgroundGC): the write path keeps only the
	// emergency free-block floor and background GC workers do the rest.
	BackgroundGC bool

	// Seq-mapped knobs (forwarded to ftl.SeqLogConfig).
	ReservePerDie int
}

// Layout is a full region configuration: the regions plus the
// object-placement catalog routing classes to region names. Classes
// absent from Placement fall back to ClassDefault's region, and when
// that is absent too, to the first page-mapped region.
type Layout struct {
	Regions   []Spec
	Placement map[Class]string
	// Scheduler routes every region's flash commands through a native
	// command scheduler with per-class priorities: reads and WAL appends
	// ahead of data programs ahead of GC (nil: raw device order).
	Scheduler *sched.Scheduler
}

// DefaultDBLayout is the canonical database layout: a sequential "log"
// region holding the WAL and a page-mapped "data" region holding
// everything else. logDies is the log region's die count (minimum 1).
func DefaultDBLayout(logDies int) Layout {
	if logDies < 1 {
		logDies = 1
	}
	return Layout{
		Regions: []Spec{
			{Name: "log", Dies: logDies, Mapping: SeqMapped},
			{Name: "data", Mapping: PageMapped},
		},
		Placement: map[Class]string{
			ClassWAL:     "log",
			ClassHeap:    "data",
			ClassIndex:   "data",
			ClassDelta:   "data",
			ClassDefault: "data",
		},
	}
}

// Region is one managed region: a die subset with its own management
// policy. Exactly one of Vol (page-mapped) and Log (seq-mapped) is set.
type Region struct {
	Name    string
	Spec    Spec
	Dies    []int // device die numbers
	Vol     *noftl.Volume
	Log     *ftl.SeqLog
	mapping Mapping
}

// Mapping returns the region's translation granularity.
func (r *Region) Mapping() Mapping { return r.mapping }

// Stats returns the region's flash-maintenance counters.
func (r *Region) Stats() ftl.Stats {
	if r.Log != nil {
		return r.Log.Stats()
	}
	return r.Vol.Stats()
}

// Manager carves one native flash device into regions and routes object
// classes to them.
type Manager struct {
	dev     *flash.Device
	layout  Layout
	regions []*Region
	byName  map[string]*Region
}

// New builds the regions of a layout over a native flash device. Dies
// are assigned to regions in declaration order; a region with Dies == 0
// takes the remainder.
func New(dev *flash.Device, layout Layout) (*Manager, error) {
	return build(dev, layout, nil)
}

// Rebuild reconstructs every region's mapping state from flash after a
// restart: page-mapped regions rescan their dies' OOBs (noftl.Rebuild),
// sequential regions recover their extent list and frontier
// (ftl.RebuildSeqLog). The scans are charged to the request descriptor
// as real page reads.
func Rebuild(dev *flash.Device, layout Layout, rq ioreq.Req) (*Manager, error) {
	return build(dev, layout, &rq)
}

func build(dev *flash.Device, layout Layout, rebuild *ioreq.Req) (*Manager, error) {
	assign, err := assignDies(dev, layout)
	if err != nil {
		return nil, err
	}
	m := &Manager{dev: dev, layout: layout, byName: map[string]*Region{}}
	var devs noftl.ClassDevs
	var walDev, gcDev flash.Dev
	if s := layout.Scheduler; s != nil {
		devs = noftl.ClassDevs{
			Read:     s.Bind(sched.ClassRead),
			WAL:      s.Bind(sched.ClassWAL),
			Data:     s.Bind(sched.ClassProgram),
			Prefetch: s.Bind(sched.ClassPrefetch),
			GC:       s.Bind(sched.ClassGC),
		}
		walDev, gcDev = devs.WAL, devs.GC
	}
	for i, spec := range layout.Regions {
		r := &Region{Name: spec.Name, Spec: spec, Dies: assign[i], mapping: spec.Mapping}
		switch spec.Mapping {
		case PageMapped:
			cfg := noftl.Config{
				OverProvision:    spec.OverProvision,
				Policy:           spec.Policy,
				LowWater:         spec.LowWater,
				MaxDeltaChain:    spec.MaxDeltaChain,
				DisableHotCold:   spec.DisableHotCold,
				DisableWearLevel: spec.DisableWearLevel,
				WearDelta:        spec.WearDelta,
				Dies:             assign[i],
				Devs:             devs,
				BackgroundGC:     spec.BackgroundGC,
			}
			if rebuild != nil {
				r.Vol, err = noftl.Rebuild(dev, cfg, *rebuild)
			} else {
				r.Vol, err = noftl.New(dev, cfg)
			}
		case SeqMapped:
			cfg := ftl.SeqLogConfig{
				Dies:          assign[i],
				ReservePerDie: spec.ReservePerDie,
				Dev:           walDev,
				GCDev:         gcDev,
			}
			if rebuild != nil {
				r.Log, err = ftl.RebuildSeqLog(dev, cfg, *rebuild)
			} else {
				r.Log, err = ftl.NewSeqLog(dev, cfg)
			}
		default:
			err = fmt.Errorf("region: %q has unknown mapping %d", spec.Name, spec.Mapping)
		}
		if err != nil {
			return nil, fmt.Errorf("region %q: %w", spec.Name, err)
		}
		m.regions = append(m.regions, r)
		m.byName[spec.Name] = r
	}
	if err := m.checkPlacement(); err != nil {
		return nil, err
	}
	return m, nil
}

// assignDies partitions the device's dies among the layout's regions.
func assignDies(dev *flash.Device, layout Layout) ([][]int, error) {
	total := dev.Geometry().Dies()
	if len(layout.Regions) == 0 {
		return nil, fmt.Errorf("region: layout declares no regions")
	}
	claimed := 0
	remainder := -1
	seen := map[string]bool{}
	for i, spec := range layout.Regions {
		if spec.Name == "" {
			return nil, fmt.Errorf("region: region %d has no name", i)
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("region: duplicate region name %q", spec.Name)
		}
		seen[spec.Name] = true
		if spec.Dies < 0 {
			return nil, fmt.Errorf("region: %q claims %d dies", spec.Name, spec.Dies)
		}
		if spec.Dies == 0 {
			if remainder >= 0 {
				return nil, fmt.Errorf("region: both %q and %q claim the remainder",
					layout.Regions[remainder].Name, spec.Name)
			}
			remainder = i
			continue
		}
		claimed += spec.Dies
	}
	rest := total - claimed
	if remainder >= 0 && rest < 1 {
		return nil, fmt.Errorf("region: %d dies claimed of %d, none left for %q",
			claimed, total, layout.Regions[remainder].Name)
	}
	if remainder < 0 && rest != 0 {
		return nil, fmt.Errorf("region: %d dies claimed of %d and no remainder region", claimed, total)
	}
	out := make([][]int, len(layout.Regions))
	die := 0
	for i, spec := range layout.Regions {
		n := spec.Dies
		if i == remainder {
			n = rest
		}
		for j := 0; j < n; j++ {
			out[i] = append(out[i], die)
			die++
		}
	}
	return out, nil
}

// checkPlacement validates the catalog: every routed class names an
// existing region, and the WAL class (if routed) does not share a
// page-mapped region with itself accidentally — any mapping is legal,
// but the name must resolve.
func (m *Manager) checkPlacement() error {
	for c, name := range m.layout.Placement {
		if c >= classCount {
			return fmt.Errorf("region: placement routes unknown class %d", c)
		}
		if m.byName[name] == nil {
			return fmt.Errorf("region: class %v routed to unknown region %q", c, name)
		}
	}
	return nil
}

// Device returns the underlying native flash device.
func (m *Manager) Device() *flash.Device { return m.dev }

// Regions returns the managed regions in declaration order.
func (m *Manager) Regions() []*Region { return append([]*Region(nil), m.regions...) }

// Region returns a region by name, or nil.
func (m *Manager) Region(name string) *Region { return m.byName[name] }

// Volume returns the named page-mapped region's volume, or nil.
func (m *Manager) Volume(name string) *noftl.Volume {
	if r := m.byName[name]; r != nil {
		return r.Vol
	}
	return nil
}

// Log returns the named sequential region's log, or nil.
func (m *Manager) Log(name string) *ftl.SeqLog {
	if r := m.byName[name]; r != nil {
		return r.Log
	}
	return nil
}

// Place resolves an object class through the placement catalog: the
// class's own entry, then ClassDefault's, then the first page-mapped
// region.
func (m *Manager) Place(c Class) *Region {
	if name, ok := m.layout.Placement[c]; ok {
		return m.byName[name]
	}
	if name, ok := m.layout.Placement[ClassDefault]; ok {
		return m.byName[name]
	}
	for _, r := range m.regions {
		if r.mapping == PageMapped {
			return r
		}
	}
	return nil
}

// Mount resolves the layout into the pair a database engine mounts: the
// page-mapped data region (heaps, indexes and deltas must agree on it)
// and the region hosting the WAL. The WAL region may be nil when the
// catalog routes no ClassWAL (the engine then keeps its log elsewhere).
func (m *Manager) Mount() (data *Region, wal *Region, err error) {
	data = m.Place(ClassHeap)
	if data == nil || data.Vol == nil {
		return nil, nil, fmt.Errorf("region: no page-mapped region for heap pages")
	}
	for _, c := range []Class{ClassIndex, ClassDelta} {
		if r := m.Place(c); r != nil && r != data {
			return nil, nil, fmt.Errorf("region: class %v routed to %q but heaps live in %q "+
				"(the engine mounts one data region)", c, r.Name, data.Name)
		}
	}
	if name, ok := m.layout.Placement[ClassWAL]; ok {
		wal = m.byName[name]
	}
	return data, wal, nil
}

// Stats aggregates flash-maintenance counters across every region.
func (m *Manager) Stats() ftl.Stats {
	var s ftl.Stats
	for _, r := range m.regions {
		s = s.Add(r.Stats())
	}
	return s
}

// RegionStats is one region's reporting row.
type RegionStats struct {
	Name          string
	Mapping       Mapping
	Dies          int
	FTL           ftl.Stats
	LivePages     int64 // pages currently holding data
	CapacityPages int64 // pages the region can hold
	FreeBlocks    int64 // erased blocks ready for new programs
	// Erase-count statistics over the region's non-bad blocks — the
	// reporting view of the wear imbalance the background sweep acts on
	// (the sweep itself reads noftl.Volume.WearSpread per volume region).
	MinErase int
	MaxErase int
	AvgErase float64
}

// EraseSpread is MaxErase-MinErase, the region's wear imbalance.
func (s RegionStats) EraseSpread() int { return s.MaxErase - s.MinErase }

// Occupancy is the live fraction of the region's capacity (frontier
// occupancy for sequential regions, mapped-page fraction for page
// regions).
func (s RegionStats) Occupancy() float64 {
	if s.CapacityPages == 0 {
		return 0
	}
	return float64(s.LivePages) / float64(s.CapacityPages)
}

// RegionStats returns every region's counters by name, in declaration
// order.
func (m *Manager) RegionStats() []RegionStats {
	out := make([]RegionStats, 0, len(m.regions))
	for _, r := range m.regions {
		s := RegionStats{Name: r.Name, Mapping: r.mapping, Dies: len(r.Dies), FTL: r.Stats()}
		if r.Log != nil {
			s.LivePages = r.Log.LivePages()
			s.CapacityPages = r.Log.CapacityPages()
			s.FreeBlocks = r.Log.FreeBlocks()
		} else {
			s.LivePages = r.Vol.LivePages()
			s.CapacityPages = r.Vol.LogicalPages()
			s.FreeBlocks = r.Vol.FreeBlocks()
		}
		s.MinErase, s.MaxErase, s.AvgErase = m.eraseStats(r)
		out = append(out, s)
	}
	return out
}

// eraseStats scans a region's dies for per-block erase counts.
func (m *Manager) eraseStats(r *Region) (minE, maxE int, avg float64) {
	arr := m.dev.Array()
	minE = int(^uint(0) >> 1)
	total, n := 0, 0
	for _, die := range r.Dies {
		sp := ftl.NewDieSpace(m.dev, die)
		for local := 0; local < sp.Blocks(); local++ {
			pbn := sp.PBN(local)
			if arr.IsBad(pbn) {
				continue
			}
			e := arr.EraseCount(pbn)
			if e < minE {
				minE = e
			}
			if e > maxE {
				maxE = e
			}
			total += e
			n++
		}
	}
	if n == 0 {
		return 0, 0, 0
	}
	return minE, maxE, float64(total) / float64(n)
}
