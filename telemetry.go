package noftl

// The public telemetry facade: request spans decomposing every commit's
// latency by layer, a unified metrics registry sampled on simulated
// time, a flight recorder for the slowest transactions and deadline
// misses, and exporters — Chrome trace-event JSON (load the file in
// Perfetto) and a machine-readable metrics dump. Attach the pipeline
// with WithTelemetry; the system wires the registry over every layer it
// assembled and benchmark runners deliver each counted transaction's
// span to it.

import (
	"io"

	"noftl/internal/ioreq"
	"noftl/internal/system"
	"noftl/internal/telemetry"
)

type (
	// Telemetry is the cross-layer telemetry pipeline of one system:
	// metrics registry, sim-time sampler, flight recorder, exporters
	// (System.Tel).
	Telemetry = telemetry.Telemetry
	// TelemetryConfig tunes the pipeline (sample period, slowest-K
	// retention, deadline-miss ring, span retention for trace export).
	TelemetryConfig = telemetry.Config
	// MetricsRegistry is the unified registry of named cross-layer
	// counters and gauges ("layer.metric" naming).
	MetricsRegistry = telemetry.Registry
	// FlightRecorder retains full span breakdowns for the slowest-K
	// requests and all deadline misses per tenant tag.
	FlightRecorder = telemetry.FlightRecorder
	// MetricSeries is the sampler's output: column names plus one row of
	// values per sample instant.
	MetricSeries = telemetry.Series
	// MetricSample is one sampler row (sim-time instant plus one value
	// per registered metric).
	MetricSample = telemetry.Sample
	// SpanDump is a span's machine-readable breakdown (per-stage
	// durations, deadline verdict, flash-command count).
	SpanDump = telemetry.SpanDump
	// Span is a request span: per-layer stage timings of one
	// transaction, riding the request descriptor from the terminal down
	// to the die queues.
	Span = ioreq.Span
	// SpanStage names one layer stage of a span (engine, buffer pool,
	// WAL, volume, scheduler queue, die service).
	SpanStage = ioreq.Stage
)

// WithTelemetry attaches the cross-layer telemetry pipeline to a
// facade-built system: a metrics registry over every layer's counters
// with a periodic sim-time sampler, plus a flight recorder for request
// spans. Runners (RunTPS, the sched ablation) deliver transaction spans
// automatically when the system carries a pipeline.
func WithTelemetry(cfg TelemetryConfig) SystemOption { return system.WithTelemetry(cfg) }

// WriteTraceEvents exports a Chrome trace-event JSON file from a
// command log and the retained transaction spans; load it in Perfetto
// (ui.perfetto.dev) to see per-die command timelines and per-layer
// transaction stage breakdowns. Either argument may be empty/nil.
func WriteTraceEvents(w io.Writer, log *CmdLog, spans []*Span) error {
	var events []SchedEvent
	if log != nil {
		events = log.Events
	}
	return telemetry.WriteTrace(w, events, spans)
}
