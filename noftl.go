// Package noftl is the public API of the NoFTL reproduction: databases
// on native flash storage (Hardock, Petrov, Gottstein, Buchmann — EDBT
// 2015).
//
// The package re-exports the user-facing pieces of the internal
// implementation:
//
//   - the flash device emulator and its NAND model (NewDevice,
//     DeviceConfig, EmulatorConfig, OpenSSDConfig),
//   - host-integrated flash management — the paper's contribution
//     (NewVolume, VolumeConfig, RebuildVolume),
//   - conventional on-device FTLs for comparison (NewPageFTL, NewDFTL,
//     NewFasterFTL) and the legacy block-device wrapper (NewBlockDevice),
//   - the Shore-MT-class storage engine (Format, Open, EngineConfig),
//   - the TPC-B/-C/-E/-H workload generators and the FIO-style
//     synthetic driver,
//   - the experiment drivers that regenerate every table and figure of
//     the paper (Figure3, Figure4, Headline, Latency, Validate) plus
//     the in-place-appends ablation (DeltaAblation).
//
// See examples/ for runnable walk-throughs and DESIGN.md for the
// architecture and the per-experiment index.
package noftl

import (
	"noftl/internal/bench"
	"noftl/internal/blockdev"
	"noftl/internal/flash"
	"noftl/internal/ftl"
	"noftl/internal/ioreq"
	"noftl/internal/nand"
	"noftl/internal/noftl"
	"noftl/internal/region"
	"noftl/internal/sim"
	"noftl/internal/storage"
	"noftl/internal/workload"
)

// --- cross-layer I/O request descriptors ---

type (
	// Req is the cross-layer I/O request descriptor: the waiter that
	// experiences a request's latency plus the intent (scheduler class,
	// stream tag, deadline) that travels with it from the workload layer
	// down to the per-die command queues.
	Req = ioreq.Req
	// ReqClass is a request's declared scheduler class.
	ReqClass = ioreq.Class
)

// Request classes. ReqDefault declares nothing — the volume's static
// per-class device routing (the pre-descriptor behavior) decides.
const (
	ReqDefault  = ioreq.ClassDefault
	ReqRead     = ioreq.ClassRead
	ReqWAL      = ioreq.ClassWAL
	ReqProgram  = ioreq.ClassProgram
	ReqPrefetch = ioreq.ClassPrefetch
	ReqGC       = ioreq.ClassGC
)

// NewReq wraps a bare waiter into an intent-free request descriptor.
func NewReq(w Waiter) Req { return ioreq.Plain(w) }

// --- NAND + flash device emulator ---

type (
	// Geometry describes a flash device's physical architecture.
	Geometry = nand.Geometry
	// CellType selects SLC/MLC/TLC timing and endurance.
	CellType = nand.CellType
	// DeviceConfig configures the emulated device.
	DeviceConfig = flash.Config
	// Device is the native-flash device emulator.
	Device = flash.Device
	// DeviceIdentity is what the native IDENTIFY command returns.
	DeviceIdentity = flash.Identity
)

// Cell technologies.
const (
	SLC = nand.SLC
	MLC = nand.MLC
	TLC = nand.TLC
)

// NewDevice creates an emulated native-flash device.
func NewDevice(cfg DeviceConfig) *Device { return flash.New(cfg) }

// EmulatorConfig builds a device geometry with the given die count and
// approximate capacity, mirroring the paper's reconfigurable emulator.
func EmulatorConfig(dies, capacityMB int, cell CellType) DeviceConfig {
	return flash.EmulatorConfig(dies, capacityMB, cell)
}

// OpenSSDConfig approximates the OpenSSD research board the paper ports
// NoFTL to.
func OpenSSDConfig() DeviceConfig { return flash.OpenSSDConfig() }

// --- simulation ---

type (
	// Kernel is the deterministic discrete-event simulation kernel.
	Kernel = sim.Kernel
	// Proc is a simulated process.
	Proc = sim.Proc
	// Waiter is how callers experience simulated latency.
	Waiter = sim.Waiter
	// ClockWaiter is a serial virtual clock (single synchronous client).
	ClockWaiter = sim.ClockWaiter
	// ProcWaiter adapts a DES process to the Waiter interface
	// (ProcWaiter{P: p} inside a Kernel.Go body).
	ProcWaiter = sim.ProcWaiter
	// SimTime is simulated time in nanoseconds.
	SimTime = sim.Time
)

// NewKernel creates a simulation kernel.
func NewKernel() *Kernel { return sim.New() }

// NewRealWaiter maps simulated time onto the wall clock (the paper's
// real-time emulator mode); scale > 1 runs faster than real time.
func NewRealWaiter(scale float64) *sim.RealWaiter { return sim.NewRealWaiter(scale) }

// --- NoFTL: the paper's contribution ---

type (
	// Volume is DBMS-managed native flash: host-side page mapping, GC
	// with dead-page knowledge, regions, wear leveling, BBM.
	Volume = noftl.Volume
	// VolumeConfig tunes a Volume.
	VolumeConfig = noftl.Config
	// PlacementHint steers hot/cold physical placement.
	PlacementHint = noftl.Hint
)

// Placement hints.
const (
	HintDefault = noftl.HintDefault
	HintHot     = noftl.HintHot
	HintCold    = noftl.HintCold
	HintLog     = noftl.HintLog
)

// NewVolume creates a NoFTL volume over a native flash device.
func NewVolume(dev *Device, cfg VolumeConfig) (*Volume, error) { return noftl.New(dev, cfg) }

// RebuildVolume reconstructs a volume's mapping from flash OOB metadata
// after a host restart. The scan's page reads are charged to rq.
func RebuildVolume(dev *Device, cfg VolumeConfig, rq Req) (*Volume, error) {
	return noftl.Rebuild(dev, cfg, rq)
}

// --- configurable flash regions ---

type (
	// RegionManager carves the die array into named regions, each with
	// its own mapping granularity, GC policy and write frontier, plus
	// the object-placement catalog.
	RegionManager = region.Manager
	// RegionLayout declares the regions and the placement catalog.
	RegionLayout = region.Layout
	// RegionSpec declares one region.
	RegionSpec = region.Spec
	// RegionClass identifies an object class for placement.
	RegionClass = region.Class
	// RegionStats is one region's reporting row (counters + occupancy).
	RegionStats = region.RegionStats
	// SeqLog is the block-granular sequential log mapper backing
	// append-only regions (WAL hosting).
	SeqLog = ftl.SeqLog
)

// Region mapping granularities and object classes.
const (
	PageMapped = region.PageMapped
	SeqMapped  = region.SeqMapped

	ClassWAL   = region.ClassWAL
	ClassHeap  = region.ClassHeap
	ClassIndex = region.ClassIndex
	ClassDelta = region.ClassDelta
)

// NewRegionManager builds the regions of a layout over a device.
func NewRegionManager(dev *Device, layout RegionLayout) (*RegionManager, error) {
	return region.New(dev, layout)
}

// RebuildRegionManager reconstructs every region's mapping from flash
// after a restart. The scans' page reads are charged to rq.
func RebuildRegionManager(dev *Device, layout RegionLayout, rq Req) (*RegionManager, error) {
	return region.Rebuild(dev, layout, rq)
}

// DefaultDBLayout is the canonical database layout: a sequential log
// region for the WAL plus a page-mapped data region for everything else.
func DefaultDBLayout(logDies int) RegionLayout { return region.DefaultDBLayout(logDies) }

// --- conventional FTLs + legacy block device (the comparison) ---

type (
	// FTL is a logical block device mapped by an on-device scheme.
	FTL = ftl.FTL
	// FTLStats counts FTL-level flash traffic.
	FTLStats = ftl.Stats
	// BlockDevice is the legacy READ/WRITE(lba) interface around an FTL.
	BlockDevice = blockdev.Device
)

// NewPageFTL creates the pure page-mapping FTL (full table in RAM).
func NewPageFTL(dev *Device, cfg ftl.PageFTLConfig) (*ftl.PageFTL, error) {
	return ftl.NewPageFTL(dev, cfg)
}

// NewDFTL creates the demand-based FTL (cached mapping table).
func NewDFTL(dev *Device, cfg ftl.DFTLConfig) (*ftl.DFTL, error) { return ftl.NewDFTL(dev, cfg) }

// NewFasterFTL creates the FASTer hybrid log-block FTL.
func NewFasterFTL(dev *Device, cfg ftl.FasterConfig) (*ftl.FasterFTL, error) {
	return ftl.NewFasterFTL(dev, cfg)
}

// NewBlockDevice wraps an FTL behind the legacy block interface.
func NewBlockDevice(f FTL, cfg blockdev.Config) *BlockDevice { return blockdev.New(f, cfg) }

// --- storage engine ---

type (
	// Engine is the Shore-MT-class storage engine.
	Engine = storage.Engine
	// EngineConfig tunes buffer pool and locking.
	EngineConfig = storage.EngineConfig
	// EngineVolume is the engine's view of a storage device.
	EngineVolume = storage.Volume
	// IOCtx carries a Waiter through engine calls.
	IOCtx = storage.IOCtx
	// Tx is a transaction handle.
	Tx = storage.Tx
	// RID identifies a heap record.
	RID = storage.RID
	// WriterConfig configures background db-writers (§3.2).
	WriterConfig = storage.WriterConfig
	// WriterAssociation selects how db-writers divide the dirty pages.
	WriterAssociation = storage.WriterAssociation
	// PrefetcherConfig configures the background read-ahead pool.
	PrefetcherConfig = storage.PrefetcherConfig
)

// Writer association strategies (§3.2, Figure 4).
const (
	AssocGlobal  = storage.AssocGlobal
	AssocDieWise = storage.AssocDieWise
)

// NewIOCtx wraps a Waiter for engine calls.
func NewIOCtx(w Waiter) *IOCtx { return storage.NewIOCtx(w) }

// NewNoFTLEngineVolume adapts a NoFTL volume for the engine.
func NewNoFTLEngineVolume(v *Volume) EngineVolume { return storage.NewNoFTLVolume(v) }

// NewBlockEngineVolume adapts a legacy block device for the engine.
func NewBlockEngineVolume(d *BlockDevice, pageSize int) EngineVolume {
	return storage.NewBlockVolume(d, pageSize)
}

// NewMemEngineVolume creates an in-memory volume (tests, trace capture).
func NewMemEngineVolume(pageSize int, pages int64) EngineVolume {
	return storage.NewMemVolume(pageSize, pages)
}

// Format initializes a fresh database on data and log volumes.
func Format(ctx *IOCtx, dataVol, logVol EngineVolume) error {
	return storage.Format(ctx, dataVol, logVol)
}

// Open mounts a database, running crash recovery if needed.
func Open(ctx *IOCtx, dataVol, logVol EngineVolume, cfg EngineConfig) (*Engine, error) {
	return storage.Open(ctx, dataVol, logVol, cfg)
}

// AppendLog is the engine's view of a native append-only log region.
type AppendLog = storage.AppendLog

// NewFlashLog adapts a sequential log region for WAL hosting.
func NewFlashLog(l *SeqLog) AppendLog { return storage.NewFlashLog(l) }

// FormatFlashLog initializes a fresh database whose WAL lives on a
// native append-only log region.
func FormatFlashLog(ctx *IOCtx, dataVol EngineVolume, log AppendLog) error {
	return storage.FormatFlashLog(ctx, dataVol, log)
}

// OpenFlashLog mounts a database whose WAL is hosted on a native
// append-only log region (region-managed placement).
func OpenFlashLog(ctx *IOCtx, dataVol EngineVolume, log AppendLog, cfg EngineConfig) (*Engine, error) {
	return storage.OpenFlashLog(ctx, dataVol, log, cfg)
}

// --- workloads ---

type (
	// Workload is a transactional benchmark.
	Workload = workload.Workload
	// TPCBConfig scales TPC-B.
	TPCBConfig = workload.TPCBConfig
	// TPCCConfig scales TPC-C.
	TPCCConfig = workload.TPCCConfig
	// TPCEConfig scales the TPC-E-like workload.
	TPCEConfig = workload.TPCEConfig
	// TPCHConfig scales the TPC-H-like workload.
	TPCHConfig = workload.TPCHConfig
)

// NewTPCB creates the TPC-B workload.
func NewTPCB(cfg TPCBConfig) Workload { return workload.NewTPCB(cfg) }

// NewTPCC creates the TPC-C workload.
func NewTPCC(cfg TPCCConfig) Workload { return workload.NewTPCC(cfg) }

// NewTPCE creates the TPC-E-like workload.
func NewTPCE(cfg TPCEConfig) Workload { return workload.NewTPCE(cfg) }

// NewTPCH creates the TPC-H-like workload.
func NewTPCH(cfg TPCHConfig) Workload { return workload.NewTPCH(cfg) }

// --- experiments (the paper's tables and figures) ---

type (
	// Fig3Config / Fig3Result: Figure 3, GC overhead FASTer vs NoFTL.
	Fig3Config = bench.Fig3Config
	// Fig3Result holds the Figure-3 table.
	Fig3Result = bench.Fig3Result
	// Fig4Config / Fig4Result: Figures 4a/4b, db-writer association.
	Fig4Config = bench.Fig4Config
	// Fig4Result holds one Figure-4 sub-figure.
	Fig4Result = bench.Fig4Result
	// HeadlineConfig / HeadlineResult: the end-to-end stack comparison.
	HeadlineConfig = bench.HeadlineConfig
	// HeadlineResult compares the stacks.
	HeadlineResult = bench.HeadlineResult
	// LatencyConfig / LatencyResult: the random-write latency study.
	LatencyConfig = bench.LatencyConfig
	// LatencyResult compares latency distributions.
	LatencyResult = bench.LatencyResult
	// ValidateConfig / ValidateResult: emulator validation (Demo 1).
	ValidateConfig = bench.ValidateConfig
	// ValidateResult is the validation table.
	ValidateResult = bench.ValidateResult
	// DeltaConfig / DeltaResult: the in-place-appends ablation (A5),
	// full-page NoFTL vs delta-append NoFTL vs the FTL block device.
	DeltaConfig = bench.DeltaConfig
	// DeltaResult is the delta-write ablation table.
	DeltaResult = bench.DeltaResult
	// RegionsConfig / RegionsResult: the configurable-regions ablation
	// (A6), single-policy NoFTL vs region-managed placement with the
	// WAL on a native append-only log region.
	RegionsConfig = bench.RegionsConfig
	// RegionsResult is the regions ablation table.
	RegionsResult = bench.RegionsResult
	// SchedConfig / SchedResult: the command-scheduling ablation (A7) —
	// inline GC vs background GC vs priority scheduling vs per-request
	// tagging.
	SchedConfig = bench.SchedConfig
	// SchedResult is the scheduling ablation outcome.
	SchedResult = bench.SchedResult
	// SchedMode names one regime of the scheduling ablation.
	SchedMode = bench.SchedMode
	// HTAPConfig / HTAPResult: the HTAP ablation (A8) — OLTP terminals
	// vs analytical scans under buffer-pool and read-ahead policies.
	HTAPConfig = bench.HTAPConfig
	// HTAPResult is the HTAP ablation outcome.
	HTAPResult = bench.HTAPResult
	// QoSConfig / QoSResult: the per-request QoS demo — two terminal
	// groups on one stack, one declared low-priority, with per-tag
	// commit-latency attribution.
	QoSConfig = bench.QoSConfig
	// QoSResult is the QoS demo outcome.
	QoSResult = bench.QoSResult
	// AblationResult is one design-choice sweep's table (A1-A4).
	AblationResult = bench.AblationResult
	// JSONReport collects machine-readable experiment results
	// (noftlbench -json).
	JSONReport = bench.JSONReport
	// JSONResult is one measurement in a JSONReport.
	JSONResult = bench.JSONResult
)

// Stream tags of the QoS demo's two tenants (QoSResult rows and blame
// tables key on these).
const (
	// TagHighPriority marks the QoS demo's foreground tenant.
	TagHighPriority = bench.TagHighPriority
	// TagLowPriority marks the QoS demo's declared-low-priority tenant.
	TagLowPriority = bench.TagLowPriority
)

// QoSTagNames names the QoS demo's stream tags (the two tenants plus
// the background db-writer and checkpointer streams) for blame tables
// and flame stacks.
func QoSTagNames() map[uint32]string { return bench.QoSTagNames() }

// Scheduling-ablation regimes (A7).
const (
	// SchedInline runs GC inline on the allocating path, FCFS dispatch.
	SchedInline = bench.SchedInline
	// SchedBackground moves GC to background workers, FCFS dispatch.
	SchedBackground = bench.SchedBackground
	// SchedPriorityMode adds the priority scheduler to background GC.
	SchedPriorityMode = bench.SchedPriority
	// SchedTagged adds per-request descriptors to the priority regime —
	// the static-routing-vs-request-tags ablation column.
	SchedTagged = bench.SchedTagged
)

// Figure3 regenerates the paper's Figure-3 table.
func Figure3(cfg Fig3Config) (*Fig3Result, error) { return bench.Figure3(cfg) }

// Figure4 regenerates Figure 4a (tpcc) or 4b (tpcb).
func Figure4(cfg Fig4Config) (*Fig4Result, error) { return bench.Figure4(cfg) }

// Headline regenerates the end-to-end stack comparison.
func Headline(cfg HeadlineConfig) (*HeadlineResult, error) { return bench.Headline(cfg) }

// Latency regenerates the write-latency study.
func Latency(cfg LatencyConfig) (*LatencyResult, error) { return bench.Latency(cfg) }

// Validate regenerates the emulator validation.
func Validate(cfg ValidateConfig) (*ValidateResult, error) { return bench.Validate(cfg) }

// DeltaAblation runs the in-place-appends ablation: what page-
// differential flushes (Volume.WriteDelta) buy over full-page writes.
func DeltaAblation(cfg DeltaConfig) (*DeltaResult, error) { return bench.DeltaAblation(cfg) }

// RegionsAblation runs the configurable-regions ablation: what
// per-region management policies and object placement buy over a
// single-policy volume when the WAL also lives on flash.
func RegionsAblation(cfg RegionsConfig) (*RegionsResult, error) { return bench.RegionsAblation(cfg) }

// SchedAblation runs the command-scheduling ablation (A7): inline GC vs
// background GC vs priority scheduling vs per-request tagging on the
// region-managed stack.
func SchedAblation(cfg SchedConfig) (*SchedResult, error) { return bench.SchedAblation(cfg) }

// HTAPAblation runs the HTAP ablation (A8): OLTP terminals vs
// analytical scans under the naive, scan-resistant and
// scan-resistant+prefetch pool policies.
func HTAPAblation(cfg HTAPConfig) (*HTAPResult, error) { return bench.HTAPAblation(cfg) }

// QoS runs the per-request QoS demo: two TPC-B terminal groups on one
// priority-scheduled stack, one group declared low-priority through the
// request descriptor, reporting per-tag commit latency.
func QoS(cfg QoSConfig) (*QoSResult, error) { return bench.QoS(cfg) }

// AblationGCPolicy sweeps the GC victim-selection policy (A1).
func AblationGCPolicy(seed int64) (*AblationResult, error) { return bench.AblationGCPolicy(seed) }

// AblationDFTLCMT sweeps DFTL's cached-mapping-table size (A2).
func AblationDFTLCMT(seed int64) (*AblationResult, error) { return bench.AblationDFTLCMT(seed) }

// AblationFasterLog sweeps FASTer's log-block share (A3).
func AblationFasterLog(seed int64) (*AblationResult, error) { return bench.AblationFasterLog(seed) }

// AblationOverProvision sweeps NoFTL's over-provisioning share (A4).
func AblationOverProvision(seed int64) (*AblationResult, error) {
	return bench.AblationOverProvision(seed)
}
