module noftl

go 1.24
