package noftl

// The serving front: multi-tenant record sessions over the engine with
// SLO-driven admission control. A Session wraps the storage engine's
// heap + index pages behind a record/KV API (Get/Put/Delete/Scan/Tx)
// and stamps every I/O it issues with its tenant's request descriptor —
// scheduler class, stream tag, completion deadline — so the per-die
// command queues see who each command belongs to. The front's admission
// controller paces tenants to their contracted rates with token buckets
// and watches each tenant's deadline-miss burn rate against its SLO
// budget, deprioritizing and finally shedding budget breachers so a
// compliant tenant's tail latency stays near its uncontended baseline.

import (
	"noftl/internal/bench"
	"noftl/internal/serve"
)

type (
	// TenantSpec declares one tenant of the serving front: its stream
	// tag, scheduler class, per-request completion deadline,
	// deadline-miss budget (the SLO) and contracted admission rate.
	TenantSpec = serve.TenantSpec
	// ServeConfig configures a serving front: the tenant catalog, the
	// admission-control regime and the controller's tuning knobs.
	ServeConfig = serve.Config
	// ServeFront is the serving front: the tenant catalog, the stores,
	// the admission controller and the session factory. Build one with
	// NewServeFront or System.StartServe.
	ServeFront = serve.Front
	// ServeStore is one named record store (a heap table plus its
	// primary-key index) served by the front.
	ServeStore = serve.Store
	// Session is one tenant's handle on a store: a record/KV API whose
	// every request passes admission and carries the tenant's request
	// descriptor.
	Session = serve.Session
	// SessionTx is an open multi-operation transaction on a session
	// (Session.Tx), admitted once as a unit.
	SessionTx = serve.Txn
	// AdmissionControl selects the front's admission regime.
	AdmissionControl = serve.Control
	// TenantState is the admission controller's per-tenant health
	// ladder: Healthy, Deprioritized, or Shed.
	TenantState = serve.TenantState
	// ServeStats is the front-wide admission accounting (sessions,
	// admitted, deprioritized, shed).
	ServeStats = serve.Stats
	// TenantStats is one tenant's admission accounting: decision
	// counters, escalation/relaxation transitions and the current state.
	TenantStats = serve.TenantStats
)

// Admission-control regimes.
const (
	// ControlNone admits every request at its declared class.
	ControlNone = serve.ControlNone
	// ControlRateLimit paces each tenant to its contracted rate with a
	// token bucket, but never reclassifies or sheds.
	ControlRateLimit = serve.ControlRateLimit
	// ControlFull adds the burn-rate SLO guard: tenants burning their
	// deadline-miss budget are deprioritized to the degraded class and,
	// if they keep burning, shed.
	ControlFull = serve.ControlFull
)

// Tenant health states of the admission ladder.
const (
	// TenantHealthy: admitted at the declared class.
	TenantHealthy = serve.Healthy
	// TenantDeprioritized: admitted, but at the degraded class.
	TenantDeprioritized = serve.Deprioritized
	// TenantShed: over-rate requests are rejected with ErrShed.
	TenantShed = serve.Shed
)

// Serving-front errors.
var (
	// ErrShed marks a request rejected by admission control; the client
	// should back off and retry.
	ErrShed = serve.ErrShed
	// ErrUnknownTenant marks a session request for a tenant not in the
	// catalog.
	ErrUnknownTenant = serve.ErrUnknownTenant
	// ErrUnknownStore marks a session request for a store that was never
	// created.
	ErrUnknownStore = serve.ErrUnknownStore
)

// NewServeFront builds a serving front over an engine. Most callers use
// System.StartServe instead, which also attaches the system's telemetry
// (the burn-rate guard samples deadline misses through it).
func NewServeFront(e *Engine, cfg ServeConfig) (*ServeFront, error) {
	return serve.New(e, cfg)
}

// --- the serving-front admission ablation ---

type (
	// ServeAblationConfig parameterizes the serving-front ablation:
	// thousands of closed-loop sessions from a compliant "paying" tenant
	// and an aggressive "batch" tenant, run under no-control, rate-limit
	// and rate-limit+shed admission regimes plus an uncontended
	// reference.
	ServeAblationConfig = bench.ServeConfig
	// ServeAblationResult is the ablation outcome: the uncontended
	// reference plus one row per admission regime.
	ServeAblationResult = bench.ServeResult
	// ServeAblationRow is one admission regime's measurement.
	ServeAblationRow = bench.ServeRow
	// ServeTenantRow is one tenant's measurement under one regime:
	// throughput, commit tail, deadline misses and the admission
	// controller's decision counters.
	ServeTenantRow = bench.ServeTenantRow
)

// Stream tags of the serving ablation's tenants (blame tables and
// Prometheus labels key on these).
const (
	// TagPaying marks the ablation's compliant, latency-sensitive tenant.
	TagPaying = bench.TagPaying
	// TagBatch marks the ablation's aggressive closed-loop tenant.
	TagBatch = bench.TagBatch
)

// ServeAblation runs the serving-front admission ablation: the same
// two-tenant load under no-control, rate-limit and rate-limit+shed
// regimes, asking whether admission control keeps the compliant
// tenant's commit tail near its uncontended baseline while the
// budget-breaching tenant is visibly deprioritized and shed.
func ServeAblation(cfg ServeAblationConfig) (*ServeAblationResult, error) {
	return bench.Serve(cfg)
}

// ServeTagNames names the serving ablation's stream tags (the two
// tenants plus the background db-writer and checkpointer streams) for
// blame tables and flame stacks.
func ServeTagNames() map[uint32]string { return bench.ServeTagNames() }
