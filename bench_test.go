// Benchmarks regenerating every table and figure of the paper's
// evaluation at reduced scale (full-scale parameters are reachable via
// cmd/noftlbench flags). Each benchmark reports the figure's headline
// metric through b.ReportMetric, so `go test -bench=.` reproduces the
// paper's numbers column.
package noftl_test

import (
	"math/rand"
	"testing"

	"noftl"
	"noftl/internal/bench"
	"noftl/internal/flash"
	"noftl/internal/ftl"
	"noftl/internal/nand"
	"noftl/internal/sim"
	"noftl/internal/storage"
	"noftl/internal/workload"
)

// --- Figure 3: GC overhead of FASTer vs NoFTL (off-line replay) ---

func BenchmarkFigure3_GCOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := noftl.Figure3(noftl.Fig3Config{
			TPCC:         workload.TPCCConfig{Warehouses: 1, CustomersPerDistrict: 60, Items: 200, InitialOrdersPerDistrict: 20},
			TPCB:         workload.TPCBConfig{Branches: 8, AccountsPerBranch: 2000},
			TPCE:         workload.TPCEConfig{Customers: 200, Securities: 200},
			Transactions: 2000,
			Seed:         int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				b.ReportMetric(row.RelativeCopyback, "copyback_ratio_"+row.Workload)
				b.ReportMetric(row.RelativeErase, "erase_ratio_"+row.Workload)
			}
		}
	}
}

// --- Figure 4a/4b: db-writer association sweep ---

func benchFigure4(b *testing.B, wl string) {
	for i := 0; i < b.N; i++ {
		res, err := noftl.Figure4(noftl.Fig4Config{
			Workload: wl,
			Dies:     []int{1, 4, 8},
			Workers:  12,
			DriveMB:  96,
			Frames:   192,
			Warm:     500 * sim.Millisecond,
			Measure:  3 * sim.Second,
			TPCB:     workload.TPCBConfig{Branches: 16},
			TPCC:     workload.TPCCConfig{Warehouses: 1},
			Seed:     int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Speedup(), "max_diewise_speedup")
			for j, dies := range []int{1, 4, 8} {
				b.ReportMetric(res.DieWise.Y[j], "tps_diewise_"+itoa(dies))
				b.ReportMetric(res.Global.Y[j], "tps_global_"+itoa(dies))
			}
		}
	}
}

func BenchmarkFigure4a_TPCC_Writers(b *testing.B) { benchFigure4(b, "tpcc") }

func BenchmarkFigure4b_TPCB_Writers(b *testing.B) { benchFigure4(b, "tpcb") }

// --- Headline: end-to-end TPS per storage stack ---

func BenchmarkHeadline_TPS_Stacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := noftl.Headline(noftl.HeadlineConfig{
			Workload: "tpcc",
			Dies:     4,
			DriveMB:  96,
			Workers:  12,
			Writers:  4,
			Frames:   256,
			Warm:     500 * sim.Millisecond,
			Measure:  3 * sim.Second,
			TPCC:     workload.TPCCConfig{Warehouses: 1},
			Seed:     int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.NoFTLSpeedupOverFaster(), "noftl_vs_faster")
			b.ReportMetric(res.DFTLSlowdownVsPagemap(), "pagemap_vs_dftl")
			for _, row := range res.Rows {
				b.ReportMetric(row.Result.TPS, "tps_"+string(row.Stack))
			}
		}
	}
}

// --- §3 latency: 4KB random writes, FTL outliers vs NoFTL ---

func BenchmarkLatency_RandomWrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := noftl.Latency(noftl.LatencyConfig{
			Ops: 8000, DriveMB: 32, Dies: 2, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			f := res.HistOf(bench.StackFaster)
			n := res.HistOf(bench.StackNoFTL)
			b.ReportMetric(f.Mean().Seconds()*1e3, "faster_mean_ms")
			b.ReportMetric(f.Max().Seconds()*1e3, "faster_max_ms")
			b.ReportMetric(n.Mean().Seconds()*1e3, "noftl_mean_ms")
			b.ReportMetric(n.Max().Seconds()*1e3, "noftl_max_ms")
		}
	}
}

// --- Demo 1: emulator validation ---

func BenchmarkEmulatorValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := noftl.Validate(noftl.ValidateConfig{Ops: 800, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MaxErrorPct(), "max_model_error_pct")
			b.ReportMetric(res.ScalingIOPS[8]/res.ScalingIOPS[1], "iops_scaling_8dies")
		}
	}
}

// --- §5 longevity: erase reduction -> lifetime factor ---

func BenchmarkLongevity_Erases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := noftl.Figure3(noftl.Fig3Config{
			TPCB:         workload.TPCBConfig{Branches: 8, AccountsPerBranch: 2000},
			TPCC:         workload.TPCCConfig{Warehouses: 1, CustomersPerDistrict: 60, Items: 200, InitialOrdersPerDistrict: 20},
			TPCE:         workload.TPCEConfig{Customers: 200, Securities: 200},
			Transactions: 2000,
			Seed:         int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, l := range res.Longevity() {
				b.ReportMetric(l.Factor, "lifetime_factor_"+l.Workload)
			}
		}
	}
}

// --- Ablations A1-A4 ---

func BenchmarkAblation_GCPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.AblationGCPolicy(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range res.Points {
				b.ReportMetric(p.WA, "wa_"+p.Param)
			}
		}
	}
}

func BenchmarkAblation_DFTLCMT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.AblationDFTLCMT(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(res.Points) >= 2 {
			b.ReportMetric(float64(res.Points[0].MapIO), "mapio_smallest_cmt")
			b.ReportMetric(float64(res.Points[len(res.Points)-1].MapIO), "mapio_largest_cmt")
		}
	}
}

func BenchmarkAblation_FasterLog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.AblationFasterLog(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range res.Points {
				b.ReportMetric(p.WA, "wa_log_"+ftoa(p.Value))
			}
		}
	}
}

func BenchmarkAblation_OverProvisioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.AblationOverProvision(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range res.Points {
				b.ReportMetric(p.WA, "wa_op_"+ftoa(p.Value))
			}
		}
	}
}

// --- Micro-benchmarks: the building blocks ---

func BenchmarkDevice_ProgramPage(b *testing.B) {
	dev := flash.New(flash.EmulatorConfig(4, 64, nand.SLC))
	geo := dev.Geometry()
	w := &sim.ClockWaiter{}
	buf := make([]byte, geo.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		die := i % geo.Dies()
		block := (i / geo.Dies()) % geo.BlocksPerDie() / geo.PlanesPerDie
		page := i % geo.PagesPerBlock
		ppn := geo.PPNOf(die, 0, block%geo.BlocksPerPlane, page)
		st, _ := dev.Array().PageState(ppn)
		if st == nand.PageProgrammed || dev.Array().NextProgramPage(geo.BlockOf(ppn)) != geo.PageIndex(ppn) {
			b.StopTimer()
			_ = dev.EraseBlock(w, geo.BlockOf(ppn))
			b.StartTimer()
		}
		_ = dev.ProgramPage(w, ppn, buf, nand.OOB{})
	}
}

func BenchmarkPageFTL_RandomWrite(b *testing.B) {
	dev := flash.New(flash.EmulatorConfig(4, 64, nand.SLC))
	f, err := ftl.NewPageFTL(dev, ftl.PageFTLConfig{})
	if err != nil {
		b.Fatal(err)
	}
	w := &sim.ClockWaiter{}
	buf := make([]byte, dev.Geometry().PageSize)
	n := f.LogicalPages()
	rng := newBenchRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Write(w, rng.Int63n(n), buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngine_TPCBTransaction(b *testing.B) {
	data := storage.NewMemVolume(4096, 1<<17)
	logv := storage.NewMemVolume(4096, 1<<15)
	ctx := storage.NewIOCtx(nil)
	if err := storage.Format(ctx, data, logv); err != nil {
		b.Fatal(err)
	}
	e, err := storage.Open(ctx, data, logv, storage.EngineConfig{BufferFrames: 1024})
	if err != nil {
		b.Fatal(err)
	}
	wl := workload.NewTPCB(workload.TPCBConfig{Branches: 8})
	if err := wl.Load(ctx, e); err != nil {
		b.Fatal(err)
	}
	rng := newBenchRand(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wl.RunOne(ctx, e, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTree_Insert(b *testing.B) {
	data := storage.NewMemVolume(4096, 1<<18)
	logv := storage.NewMemVolume(4096, 1<<15)
	ctx := storage.NewIOCtx(nil)
	if err := storage.Format(ctx, data, logv); err != nil {
		b.Fatal(err)
	}
	e, err := storage.Open(ctx, data, logv, storage.EngineConfig{BufferFrames: 2048})
	if err != nil {
		b.Fatal(err)
	}
	idx, err := e.CreateIndex(ctx, "bench")
	if err != nil {
		b.Fatal(err)
	}
	tx := e.Begin()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := int64(i)*2654435761%(1<<40) + int64(i)
		_ = e.IdxInsert(ctx, tx, idx, key, storage.RID{Page: storage.PageID(i)})
	}
}

// small helpers (no fmt in hot paths)

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

func ftoa(f float64) string {
	return itoa(int(f*100)) + "pct"
}

func newBenchRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
