package noftl

// The public system facade: one call builds the whole stack — native
// flash device, host-side flash management (volumes or regions), an
// optional per-die command scheduler, background-GC configuration and
// the storage engine formatted on top — instead of hand-wiring five
// layers. The same builder powers the experiment drivers, so examples,
// commands and benchmarks construct identical systems.

import (
	"noftl/internal/bench"
	"noftl/internal/sched"
	"noftl/internal/sim"
	"noftl/internal/system"
	"noftl/internal/trace"
	"noftl/internal/workload"
)

type (
	// System is an engine mounted on one storage stack, with every layer
	// reachable for inspection (Engine, Dev, NoFTL, Regions, Sched) and
	// a Close/Snapshot lifecycle.
	System = system.System
	// SystemConfig declares the stack, device geometry and buffer size.
	SystemConfig = system.Config
	// SystemOption tunes the optional subsystems (scheduler, background
	// GC, scan resistance, prefetch, tracing).
	SystemOption = system.Option
	// SystemSnapshot is a cross-layer counter snapshot (System.Snapshot).
	SystemSnapshot = system.Snapshot
	// Stack names a storage architecture (NoFTL variants vs legacy FTL
	// stacks).
	Stack = system.Stack
)

// The storage stacks a System can mount.
const (
	// StackNoFTL is host-managed native flash, one page-mapped volume.
	StackNoFTL = system.StackNoFTL
	// StackFaster is the FASTer hybrid FTL behind a block interface.
	StackFaster = system.StackFaster
	// StackDFTL is the demand-based FTL behind a block interface.
	StackDFTL = system.StackDFTL
	// StackPagemap is the pure page-mapped FTL behind a block interface.
	StackPagemap = system.StackPagemap
	// StackNoFTLDelta is NoFTL with the in-place-append flush path on.
	StackNoFTLDelta = system.StackNoFTLDelta
	// StackNoFTLSingle is one single-policy NoFTL volume hosting WAL and
	// data (the regions ablation's baseline).
	StackNoFTLSingle = system.StackNoFTLSingle
	// StackNoFTLRegions is region-managed placement: WAL on a native
	// append-only log region, data on a page-mapped region.
	StackNoFTLRegions = system.StackNoFTLRegions
)

// NewSystem builds a complete system — device, flash management,
// optional scheduler, formatted engine — from a facade config plus
// options. The zero config mounts the region-managed NoFTL stack on 8
// SLC dies of ~64 MB with 256 buffer frames.
func NewSystem(cfg SystemConfig, opts ...SystemOption) (*System, error) {
	return system.New(cfg, opts...)
}

// WithScheduler attaches a native per-die command scheduler with an
// explicit configuration.
func WithScheduler(cfg SchedulerConfig) SystemOption { return system.WithScheduler(cfg) }

// WithPriorityScheduler attaches the priority command scheduler
// (reads > WAL appends > programs > prefetch > GC, erase suspension on).
func WithPriorityScheduler() SystemOption { return system.WithPriorityScheduler() }

// WithBackgroundGC builds the flash volumes for worker-driven garbage
// collection; start the workers with System.StartMaintenance.
func WithBackgroundGC() SystemOption { return system.WithBackgroundGC() }

// WithScanResistance segments the buffer-pool clock so scans cannot
// evict the OLTP working set.
func WithScanResistance() SystemOption { return system.WithScanResistance() }

// WithPrefetch enables sequential read-ahead with the given window in
// pages.
func WithPrefetch(window int) SystemOption { return system.WithPrefetch(window) }

// WithTrace registers a per-command trace hook on the scheduler
// (attaching a default priority scheduler when none was requested);
// pass a CmdLog's Record method to collect a command log.
func WithTrace(fn func(SchedEvent)) SystemOption { return system.WithTrace(fn) }

// --- command scheduler ---

type (
	// Scheduler is the native per-die command scheduler.
	Scheduler = sched.Scheduler
	// SchedulerConfig tunes a Scheduler (policy, erase suspension,
	// anti-starvation, trace hook).
	SchedulerConfig = sched.Config
	// SchedPolicy selects the queue discipline (FCFS or Priority).
	SchedPolicy = sched.Policy
	// SchedStats is scheduler-level accounting (per-class dispatches and
	// queue waits, retags, promotions).
	SchedStats = sched.Stats
	// SchedEvent describes one dispatched command (class, tag, die,
	// queue wait, service window).
	SchedEvent = sched.Event
	// CmdClass is a dispatched command's priority class.
	CmdClass = sched.Class
	// CmdLog collects scheduler events for offline latency analysis.
	CmdLog = trace.CmdLog
	// MaintenanceConfig tunes the background flash-maintenance workers.
	MaintenanceConfig = sched.MaintConfig
	// Maintenance is the handle over running maintenance workers.
	Maintenance = sched.Maintenance
)

// Queue disciplines.
const (
	// SchedFCFS serves commands in arrival order (the firmware-FTL
	// baseline).
	SchedFCFS = sched.FCFS
	// SchedPriority serves the highest class first with erase
	// suspension.
	SchedPriority = sched.Priority
)

// Command priority classes, highest first.
const (
	CmdRead     = sched.ClassRead
	CmdWAL      = sched.ClassWAL
	CmdProgram  = sched.ClassProgram
	CmdPrefetch = sched.ClassPrefetch
	CmdGC       = sched.ClassGC
)

// --- simulated time units ---

// Simulated-time units (SimTime is nanoseconds).
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// --- closed-loop terminals (multi-client workloads) ---

type (
	// Terminal is one closed-loop client with per-transaction latency
	// accounting and an optional stream tag.
	Terminal = workload.Terminal
	// TerminalConfig configures StartTerminals (count, seed, think
	// time, per-terminal scheduler class and stream tag).
	TerminalConfig = workload.TerminalConfig
	// Terminals is the handle over a running terminal set, with per-tag
	// latency aggregation.
	Terminals = workload.Terminals
)

// StartTerminals launches N closed-loop terminal processes running wl
// against e on kernel k. Terminals can declare per-request scheduler
// classes and stream tags (TerminalConfig.ClassOf/TagOf) that travel
// with every command down to the die queues.
func StartTerminals(k *Kernel, e *Engine, wl Workload, cfg TerminalConfig) *Terminals {
	return workload.StartTerminals(k, e, wl, cfg)
}

// --- canned run drivers ---

type (
	// TPSConfig drives a throughput measurement (terminals, db-writers,
	// checkpointing, warm-up and measure windows, tagging).
	TPSConfig = bench.TPSConfig
	// TPSResult is one throughput measurement with latency histograms
	// and cross-layer counters.
	TPSResult = bench.TPSResult
)

// RunTPS loads wl on the system, then measures transaction throughput
// under the DES kernel: terminal processes, background db-writers, a
// checkpointer, and (on background-GC systems) flash-maintenance
// workers.
func RunTPS(sys *System, wl Workload, cfg TPSConfig) (*TPSResult, error) {
	return bench.RunTPS(sys, wl, cfg)
}
